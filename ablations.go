package ce

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/stats"
)

// Ablation experiments beyond the paper's figures. Each quantifies one
// design choice that DESIGN.md calls out.

// SteeringAblation compares the Section 5.1 dependence-steering heuristic
// against degenerate policies on the unclustered FIFO machine: random FIFO
// choice and round-robin. It isolates the value of dependence awareness in
// the steering logic itself (the paper only ablates steering in the
// clustered case, Figure 17).
func SteeringAblation() (*report.Table, error) {
	mk := func(name string, policy core.SteerPolicy) Config {
		return table3(name, 1, 0, core.FIFOBankSpec(core.FIFOBankConfig{
			Name: name, Clusters: 1, FIFOsPerCluster: 8, Depth: 8, Policy: policy,
		}))
	}
	cfgs := []Config{
		BaselineConfig(),
		DependenceConfig(),
		mk("fifos-random-steer", core.SteerRandom),
	}
	cmp := &IPCComparison{}
	res, err := RunMatrix(cfgs, Workloads())
	if err != nil {
		return nil, err
	}
	cmp.Workloads, cmp.Configs, cmp.Results = Workloads(), cfgs, res
	return cmp.IPCTable("Steering ablation: dependence-aware versus random FIFO steering (unclustered)"), nil
}

// FIFOGeometry sweeps the number of FIFOs × depth at a fixed total
// capacity of 64 entries on the unclustered dependence-based machine.
func FIFOGeometry() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "FIFO geometry sweep: FIFOs x depth at 64 total entries (unclustered)",
		Headers: []string{"geometry", "mean IPC", "min IPC", "max IPC"},
	}
	base, err := RunMatrix([]Config{BaselineConfig()}, ws)
	if err != nil {
		return nil, err
	}
	var ipcs []float64
	for wi := range ws {
		ipcs = append(ipcs, base[0][wi].IPC())
	}
	lo, hi := stats.MinMax(ipcs)
	tbl.AddRowf("64-entry window", stats.Mean(ipcs), lo, hi)
	for _, g := range []struct{ fifos, depth int }{{4, 16}, {8, 8}, {16, 4}, {32, 2}} {
		name := fmt.Sprintf("%d fifos x %d", g.fifos, g.depth)
		cfg := table3(name, 1, 0, core.FIFOBankSpec(core.FIFOBankConfig{
			Name: name, Clusters: 1, FIFOsPerCluster: g.fifos, Depth: g.depth,
		}))
		res, err := RunMatrix([]Config{cfg}, ws)
		if err != nil {
			return nil, err
		}
		ipcs = ipcs[:0]
		for wi := range ws {
			ipcs = append(ipcs, res[0][wi].IPC())
		}
		lo, hi := stats.MinMax(ipcs)
		tbl.AddRowf(name, stats.Mean(ipcs), lo, hi)
	}
	return tbl, nil
}

// LatencySweep varies the inter-cluster bypass latency of the 2×4-way
// clustered dependence-based machine (the paper fixes it at 2 cycles and
// predicts slower cross-cluster paths in future technologies).
func LatencySweep() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Inter-cluster bypass latency sweep (2x4-way dependence-based)",
		Headers: []string{"inter-cluster latency", "mean IPC", "mean degradation vs 1-cycle-uniform"},
	}
	base, err := RunMatrix([]Config{BaselineConfig()}, ws)
	if err != nil {
		return nil, err
	}
	var baseIPC []float64
	for wi := range ws {
		baseIPC = append(baseIPC, base[0][wi].IPC())
	}
	for extra := 0; extra <= 3; extra++ {
		cfg := ClusteredDependenceConfig()
		cfg.Name = fmt.Sprintf("2x4way-X%d", extra+1)
		cfg.InterClusterDelay = extra
		res, err := RunMatrix([]Config{cfg}, ws)
		if err != nil {
			return nil, err
		}
		var ipcs, degs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[0][wi].IPC())
			degs = append(degs, 1-res[0][wi].IPC()/baseIPC[wi])
		}
		tbl.AddRowf(fmt.Sprintf("%d cycles", extra+1), stats.Mean(ipcs),
			fmt.Sprintf("%.1f%%", stats.Mean(degs)*100))
	}
	return tbl, nil
}

// PredictorAblation compares branch predictors on the baseline machine
// (Table 3 uses gshare; this quantifies how much the IPC results depend on
// that choice).
func PredictorAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Branch predictor ablation (baseline 8-way window machine)",
		Headers: []string{"predictor", "mean IPC", "mean mispredict rate"},
	}
	for _, name := range []string{"perfect", "gshare", "bimodal", "taken"} {
		cfg, err := WithPredictor(BaselineConfig(), name)
		if err != nil {
			return nil, err
		}
		res, err := RunMatrix([]Config{cfg}, ws)
		if err != nil {
			return nil, err
		}
		var ipcs, rates []float64
		for wi := range ws {
			ipcs = append(ipcs, res[0][wi].IPC())
			rates = append(rates, res[0][wi].MispredictRate())
		}
		tbl.AddRowf(name, stats.Mean(ipcs), fmt.Sprintf("%.1f%%", stats.Mean(rates)*100))
	}
	return tbl, nil
}

// AtomicityAblation quantifies Section 4.5's pipelining argument: wakeup +
// select and single-cycle data bypassing "constitute atomic operations" —
// splitting them across pipeline stages (Figure 10), or removing the local
// bypass network, forfeits back-to-back execution of dependent
// instructions. Each row breaks one atomicity on the baseline machine.
func AtomicityAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Atomicity ablation: pipelined window logic and incomplete bypassing (baseline 8-way)",
		Headers: []string{"machine", "mean IPC", "vs baseline"},
	}
	base := BaselineConfig()

	pipelined := BaselineConfig()
	pipelined.Name = "pipelined wakeup+select"
	pipelined.PipelinedWakeupSelect = true

	partial := BaselineConfig()
	partial.Name = "one-cycle-late bypass"
	partial.LocalBypassExtra = 1

	none := BaselineConfig()
	none.Name = "register-file-only operands"
	none.LocalBypassExtra = 2

	res, err := RunMatrix([]Config{base, pipelined, partial, none}, ws)
	if err != nil {
		return nil, err
	}
	var baseMean float64
	for ci, cfg := range []Config{base, pipelined, partial, none} {
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[ci][wi].IPC())
		}
		m := stats.Mean(ipcs)
		if ci == 0 {
			baseMean = m
			tbl.AddRowf(cfg.Name, m, "-")
			continue
		}
		tbl.AddRowf(cfg.Name, m, fmt.Sprintf("%+.1f%%", (m/baseMean-1)*100))
	}
	return tbl, nil
}

// FetchRealismAblation measures how much the Table 3 idealizations at the
// front end (perfect I-cache, fetch across taken branches) contribute to
// the baseline IPC.
func FetchRealismAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Front-end realism ablation (baseline 8-way)",
		Headers: []string{"front end", "mean IPC", "vs ideal"},
	}
	ideal := BaselineConfig()
	ideal.Name = "ideal (Table 3)"

	breakTaken := BaselineConfig()
	breakTaken.Name = "fetch breaks at taken branches"
	breakTaken.FetchBreakOnTaken = true

	icache := BaselineConfig()
	icache.Name = "16KB 2-way I-cache"
	ic := cache.Config{SizeBytes: 16 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, MissCycles: 6}
	icache.ICache = &ic

	both := BaselineConfig()
	both.Name = "I-cache + fetch break"
	ic2 := ic
	both.ICache = &ic2
	both.FetchBreakOnTaken = true

	cfgs := []Config{ideal, breakTaken, icache, both}
	res, err := RunMatrix(cfgs, ws)
	if err != nil {
		return nil, err
	}
	var baseMean float64
	for ci, cfg := range cfgs {
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[ci][wi].IPC())
		}
		m := stats.Mean(ipcs)
		if ci == 0 {
			baseMean = m
			tbl.AddRowf(cfg.Name, m, "-")
			continue
		}
		tbl.AddRowf(cfg.Name, m, fmt.Sprintf("%+.1f%%", (m/baseMean-1)*100))
	}
	return tbl, nil
}

// SelectionPolicyAblation tests Butler & Patt's observation (cited in
// Section 4.3) that overall performance is largely independent of the
// selection policy: age-ordered versus random selection from the ready
// pool.
func SelectionPolicyAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Selection policy ablation (64-entry window, 8-way)",
		Headers: []string{"selection policy", "mean IPC"},
	}
	age := BaselineConfig()
	age.Name = "oldest-first (position)"
	random := table3("random-select", 1, 0, core.RandomSelectSpec(64))
	random.Name = "random"
	res, err := RunMatrix([]Config{age, random}, ws)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range []Config{age, random} {
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[ci][wi].IPC())
		}
		tbl.AddRowf(cfg.Name, stats.Mean(ipcs))
	}
	return tbl, nil
}

// StoreForwardingAblation measures the timing value of store-to-load
// forwarding on the baseline machine.
func StoreForwardingAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Store-to-load forwarding ablation (baseline 8-way)",
		Headers: []string{"machine", "mean IPC", "forwarded loads"},
	}
	off := BaselineConfig()
	off.Name = "no forwarding"
	on := BaselineConfig()
	on.Name = "store-to-load forwarding"
	on.StoreForwarding = true
	res, err := RunMatrix([]Config{off, on}, ws)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range []Config{off, on} {
		var ipcs []float64
		var fwd uint64
		for wi := range ws {
			ipcs = append(ipcs, res[ci][wi].IPC())
			fwd += res[ci][wi].ForwardedLoads
		}
		tbl.AddRowf(cfg.Name, stats.Mean(ipcs), fwd)
	}
	return tbl, nil
}

// MicrobenchCharacterization runs the five mechanism-isolating
// microbenchmarks on the main machine organizations: each row shows one
// bottleneck (serial chain, abundant ILP, load-to-load chains, hard
// branches, cache misses) and how each organization responds.
func MicrobenchCharacterization() (*report.Table, error) {
	micros := []string{"micro.chain", "micro.parallel", "micro.chase", "micro.branchy", "micro.stream"}
	cfgs := []Config{BaselineConfig(), DependenceConfig(), ClusteredDependenceConfig(), RandomSteerConfig()}
	res, err := RunMatrix(cfgs, micros)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   "Microbenchmark characterization (IPC)",
		Headers: []string{"microbenchmark"},
	}
	for _, c := range cfgs {
		tbl.Headers = append(tbl.Headers, c.Name)
	}
	for wi, w := range micros {
		row := []interface{}{w}
		for ci := range cfgs {
			row = append(row, res[ci][wi].IPC())
		}
		tbl.AddRowf(row...)
	}
	return tbl, nil
}

// SteeringDepthAblation measures Section 5.3's caveat about complex
// steering heuristics: "a new pipestage can be introduced — at the cost of
// an increase in branch mispredict penalty." The dependence-based machine
// is run with progressively deeper front ends.
func SteeringDepthAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Steering pipeline depth ablation (dependence-based 8-way)",
		Headers: []string{"front-end depth", "mean IPC", "vs 2-stage"},
	}
	var baseMean float64
	for depth := 2; depth <= 5; depth++ {
		cfg := DependenceConfig()
		cfg.Name = fmt.Sprintf("frontend-%d", depth)
		cfg.FrontEndDepth = depth
		res, err := RunMatrix([]Config{cfg}, ws)
		if err != nil {
			return nil, err
		}
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[0][wi].IPC())
		}
		m := stats.Mean(ipcs)
		if depth == 2 {
			baseMean = m
			tbl.AddRowf(fmt.Sprintf("%d stages", depth), m, "-")
			continue
		}
		tbl.AddRowf(fmt.Sprintf("%d stages (steer pipestage +%d)", depth, depth-2), m,
			fmt.Sprintf("%+.1f%%", (m/baseMean-1)*100))
	}
	return tbl, nil
}

// WrongPathAblation compares the trace-driven stall-at-mispredict model
// (the paper's SimpleScalar methodology) against full wrong-path
// execution, where mispredicted paths are fetched, renamed and executed
// before being squashed — consuming physical registers and scheduler slots
// and polluting the data cache.
func WrongPathAblation() (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Misprediction model ablation (baseline 8-way, gshare)",
		Headers: []string{"model", "mean IPC", "squashed/committed"},
	}
	stall := BaselineConfig()
	stall.Name = "stall fetch at mispredict"
	wrong := BaselineConfig()
	wrong.Name = "wrong-path execution"
	wrong.WrongPathExecution = true
	res, err := RunMatrix([]Config{stall, wrong}, ws)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range []Config{stall, wrong} {
		var ipcs []float64
		var squashed, committed uint64
		for wi := range ws {
			ipcs = append(ipcs, res[ci][wi].IPC())
			squashed += res[ci][wi].SquashedUops
			committed += res[ci][wi].Committed
		}
		tbl.AddRowf(cfg.Name, stats.Mean(ipcs),
			fmt.Sprintf("%.1f%%", float64(squashed)/float64(committed)*100))
	}
	return tbl, nil
}

// WithWrongPath returns a copy of cfg with wrong-path execution enabled.
func WithWrongPath(cfg Config) Config {
	cfg.WrongPathExecution = true
	cfg.Name += "+wrongpath"
	return cfg
}

// WorkloadProfiles characterizes every workload (including extensions)
// with the dynamic profiler: instruction mix, branch density, dependence
// distances and the dataflow-limit ILP — the properties that justify the
// SPEC95-like substitution (see DESIGN.md).
func WorkloadProfiles() (*report.Table, error) {
	tbl := &report.Table{
		Title: "Workload profiles",
		Headers: []string{"workload", "insts", "loads", "stores", "branches",
			"taken", "dep P50", "win-64 cov", "dataflow ILP", "footprint"},
	}
	for _, name := range WorkloadsExtended() {
		w, err := prog.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Program()
		if err != nil {
			return nil, err
		}
		r, err := profile.Profile(p, 50_000_000)
		if err != nil {
			return nil, err
		}
		tbl.AddRowf(name, r.Instructions,
			fmt.Sprintf("%.0f%%", r.Mix[isa.ClassLoad]*100),
			fmt.Sprintf("%.0f%%", r.Mix[isa.ClassStore]*100),
			fmt.Sprintf("%.0f%%", r.Mix[isa.ClassBranch]*100),
			fmt.Sprintf("%.0f%%", r.TakenRate*100),
			r.DepDistance.Percentile(50),
			fmt.Sprintf("%.0f%%", r.WindowCoverage(64)*100),
			fmt.Sprintf("%.1f", r.DataflowILP),
			fmt.Sprintf("%dB", r.FootprintBytes))
	}
	return tbl, nil
}
