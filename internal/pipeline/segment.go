package pipeline

// Segment runs: boot a Simulator from a trace boundary, discard a
// warmup prefix, measure a window, and return the window's Stats delta.
//
// The exactness argument for full warmup (warmup < 0) is telescoping:
// the run loop stops at the first cycle boundary on which the committed
// count has crossed the target, so a full-warmup segment run is the
// *identical* deterministic simulation as the monolithic run, merely
// snapshotted at two extra points. Every Stats counter is cumulative
// and monotone, so the per-segment deltas of consecutive segments share
// their interior snapshots and sum — exactly, field for field, bucket
// for bucket — to the monolithic totals. With finite warmup the
// predictor, caches and window state are only approximately warm at the
// measurement boundary and the stitched result is an estimate; the
// sampled mode in the root package puts confidence intervals on it.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/trace"
)

// snapshot captures the run's cumulative statistics at the current
// cycle, mirroring exactly what Run's epilogue would report if the run
// stopped here. The histogram is deep-copied so the simulation can
// continue without mutating the snapshot.
func (s *Simulator) snapshot() Stats {
	st := s.stats
	st.Cycles = s.cycle
	st.Cache = s.dcache.Stats()
	if s.icache != nil {
		st.ICache = s.icache.Stats()
	}
	st.IssuedPerCycle = s.stats.IssuedPerCycle.Clone()
	return st
}

// RunUntilCommitted advances the simulation until at least target
// instructions have committed (counted from this simulator's own start,
// which for a seeked reader is the warm-start boundary) or the run
// completes, and returns a snapshot of the cumulative statistics. Call
// it repeatedly with increasing targets to snapshot one run at several
// commit horizons; deltas between snapshots are per-window statistics.
func (s *Simulator) RunUntilCommitted(target uint64, maxCycles int64) (Stats, error) {
	for !s.done() && s.stats.Committed < target {
		if maxCycles > 0 && s.cycle >= maxCycles {
			return s.snapshot(), fmt.Errorf("pipeline: %s/%s: exceeded %d cycles (%d of %d committed)",
				s.cfg.Name, s.stats.Workload, maxCycles, s.stats.Committed, target)
		}
		if err := s.step(); err != nil {
			return s.snapshot(), err
		}
	}
	return s.snapshot(), nil
}

// SegmentOpts selects how a segment run warms microarchitectural state
// before its measurement window opens.
type SegmentOpts struct {
	// Warmup is the fixed warmup prefix in committed instructions: the
	// replay starts Warmup records before the segment (clamped to the
	// trace start) and discards the cycles up to the segment boundary.
	// Negative replays the full prefix — the exact mode. Ignored when
	// Adaptive is set.
	Warmup int64
	// Adaptive replaces the fixed prefix with IPC-convergence detection:
	// the replay starts cold at the segment boundary and discards the
	// segment's own leading sub-windows until the windowed IPC settles,
	// so each segment pays only the warmup it actually needs.
	Adaptive bool
	// AdaptiveWindow is the sub-window size in committed instructions
	// over which IPC is measured (default 4096).
	AdaptiveWindow uint64
	// AdaptiveTol is the relative IPC change below which two consecutive
	// windows count as converged (default 0.02).
	AdaptiveTol float64
	// AdaptiveCap bounds the discarded prefix in committed instructions
	// (default 65536 — two warm-start intervals — and never more than
	// half the segment, so every segment yields a measurement).
	AdaptiveCap uint64
	// Slabs, when non-nil, drives the segment from shared decoded slabs
	// (gang replay) instead of a private streaming Reader: the segment
	// worker opens a SlabCursor at the warm-start boundary, so concurrent
	// segments — across configs and across segment indices — share one
	// decoded copy of each chunk. The stitched statistics are identical
	// either way; internal/verify pins it.
	Slabs *trace.SlabCache
}

// Adaptive warmup defaults; see SegmentOpts.
const (
	defaultAdaptiveWindow = 4096
	defaultAdaptiveTol    = 0.02
	defaultAdaptiveCap    = 65536
)

// SegmentReport describes what a segment run discarded as warmup.
type SegmentReport struct {
	// WarmupSteps is how many committed instructions were discarded
	// before the measurement window opened (for fixed warmup, the prefix
	// actually replayed after clamping at the trace start).
	WarmupSteps uint64
	// Converged reports whether adaptive warmup's windowed IPC settled
	// before the cap. Always true for fixed warmup.
	Converged bool
}

// RunSegment simulates one trace segment under cfg with a fixed warmup:
// replay starts at the segment's warm-start boundary (see
// trace.Trace.WarmStart; warmup < 0 replays the full prefix), cycles up
// to the segment start are discarded, and the returned Stats is the
// delta over the measurement window [seg.Start, seg.End).
func RunSegment(cfg Config, tr *trace.Trace, seg trace.Segment, warmup, maxCycles int64) (Stats, error) {
	st, _, err := RunSegmentOpts(cfg, tr, seg, SegmentOpts{Warmup: warmup}, maxCycles)
	return st, err
}

// RunSegmentOpts simulates one trace segment under cfg with the given
// warmup policy and returns the measurement window's Stats delta plus a
// report of what was discarded. Host telemetry covers the warmup leg
// too — that cost is real work this segment run performed.
func RunSegmentOpts(cfg Config, tr *trace.Trace, seg trace.Segment, opts SegmentOpts, maxCycles int64) (Stats, SegmentReport, error) {
	warmup := opts.Warmup
	if opts.Adaptive {
		// Adaptive warmup starts cold at the boundary and discards the
		// segment's own leading windows; there is no replayed prefix.
		warmup = 0
	}
	start := tr.WarmStart(seg, warmup)
	var (
		sim *Simulator
		err error
	)
	if opts.Slabs != nil {
		cur, cerr := trace.NewSlabCursorAt(opts.Slabs, tr, start)
		if cerr != nil {
			return Stats{}, SegmentReport{}, cerr
		}
		defer cur.Release()
		sim, err = NewSlabReplay(cfg, cur)
	} else {
		rd, rerr := trace.NewReaderAt(tr, start)
		if rerr != nil {
			return Stats{}, SegmentReport{}, rerr
		}
		defer rd.Release()
		sim, err = NewReplay(cfg, rd)
	}
	if err != nil {
		return Stats{}, SegmentReport{}, err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	startWall := time.Now() //ce:nondet-ok host-performance telemetry (HostWallSeconds), not simulated time

	var (
		warm   Stats
		report SegmentReport
	)
	if opts.Adaptive {
		warm, report, err = sim.adaptiveWarm(seg, opts, maxCycles)
	} else {
		warm, err = sim.RunUntilCommitted(seg.Start.Step-start.Step, maxCycles)
		report = SegmentReport{WarmupSteps: warm.Committed, Converged: true}
	}
	if err != nil {
		return warm, report, err
	}
	end, err := sim.RunUntilCommitted(seg.End.Step-start.Step, maxCycles)
	if err != nil {
		return end, report, err
	}
	delta, err := SubStats(end, warm)
	if err != nil {
		return delta, report, fmt.Errorf("pipeline: %s/%s segment %d: %w", cfg.Name, tr.Program().Name, seg.Index, err)
	}
	delta.HostWallSeconds = time.Since(startWall).Seconds() //ce:nondet-ok host-performance telemetry, not simulated time
	runtime.ReadMemStats(&ms)
	delta.HostAllocs = ms.Mallocs - startAllocs
	return delta, report, nil
}

// adaptiveWarm advances a simulator freshly booted at seg.Start through
// sub-windows of the segment itself until the windowed IPC of two
// consecutive windows agrees within tolerance, and returns the snapshot
// at which the measurement window opens. Where a fixed warmup replays
// an extra prefix before the segment (paying for records outside it),
// adaptive warmup spends nothing extra: it sacrifices a bounded sliver
// of the segment's own front, sized by when the caches and predictor
// actually stop drifting rather than by a one-size guess.
func (s *Simulator) adaptiveWarm(seg trace.Segment, opts SegmentOpts, maxCycles int64) (Stats, SegmentReport, error) {
	window := opts.AdaptiveWindow
	if window == 0 {
		window = defaultAdaptiveWindow
	}
	tol := opts.AdaptiveTol
	if tol <= 0 {
		tol = defaultAdaptiveTol
	}
	limit := opts.AdaptiveCap
	if limit == 0 {
		limit = defaultAdaptiveCap
	}
	if half := seg.Steps() / 2; limit > half {
		limit = half
	}
	var (
		warm    Stats // snapshot at the measurement window's opening
		prevIPC float64
	)
	for warm.Committed < limit {
		target := warm.Committed + window
		if target > limit {
			target = limit
		}
		snap, err := s.RunUntilCommitted(target, maxCycles)
		if err != nil {
			return snap, SegmentReport{WarmupSteps: snap.Committed}, err
		}
		if snap.Committed < target {
			// The run completed inside the warmup prefix (tiny tail
			// segment); nothing left to measure beyond what we have.
			return warm, SegmentReport{WarmupSteps: warm.Committed}, nil
		}
		wc := snap.Committed - warm.Committed
		wy := snap.Cycles - warm.Cycles
		ipc := 0.0
		if wy > 0 {
			ipc = float64(wc) / float64(wy)
		}
		warm = snap
		if prevIPC > 0 {
			d := ipc - prevIPC
			if d < 0 {
				d = -d
			}
			if d <= tol*prevIPC {
				return warm, SegmentReport{WarmupSteps: warm.Committed, Converged: true}, nil
			}
		}
		prevIPC = ipc
	}
	return warm, SegmentReport{WarmupSteps: warm.Committed}, nil
}

// SubStats returns end minus warm, field by field: the statistics of
// the window between two snapshots of one run. Every counter of end
// must be at least warm's (snapshots of a single run are monotone);
// a violation reports which counter went backwards instead of wrapping.
func SubStats(end, warm Stats) (Stats, error) {
	var firstErr error
	sub := func(a, b uint64, what string) uint64 {
		if a < b {
			if firstErr == nil {
				firstErr = fmt.Errorf("stats: %s went backwards between snapshots (%d then %d)", what, b, a)
			}
			return 0
		}
		return a - b
	}
	d := Stats{Config: end.Config, Workload: end.Workload}
	if end.Cycles < warm.Cycles {
		return d, fmt.Errorf("stats: cycles went backwards between snapshots (%d then %d)", warm.Cycles, end.Cycles)
	}
	d.Cycles = end.Cycles - warm.Cycles
	d.Committed = sub(end.Committed, warm.Committed, "committed")
	d.EmuSteps = sub(end.EmuSteps, warm.EmuSteps, "emu steps")
	d.CondBranches = sub(end.CondBranches, warm.CondBranches, "cond branches")
	d.Mispredicts = sub(end.Mispredicts, warm.Mispredicts, "mispredicts")
	d.InterClusterUops = sub(end.InterClusterUops, warm.InterClusterUops, "inter-cluster uops")
	d.ForwardedLoads = sub(end.ForwardedLoads, warm.ForwardedLoads, "forwarded loads")
	d.SquashedUops = sub(end.SquashedUops, warm.SquashedUops, "squashed uops")
	d.SchedulerStalls = sub(end.SchedulerStalls, warm.SchedulerStalls, "scheduler stalls")
	d.PhysRegStalls = sub(end.PhysRegStalls, warm.PhysRegStalls, "physreg stalls")
	d.ROBStalls = sub(end.ROBStalls, warm.ROBStalls, "rob stalls")
	d.Cache.Accesses = sub(end.Cache.Accesses, warm.Cache.Accesses, "dcache accesses")
	d.Cache.Misses = sub(end.Cache.Misses, warm.Cache.Misses, "dcache misses")
	d.Cache.Writebacks = sub(end.Cache.Writebacks, warm.Cache.Writebacks, "dcache writebacks")
	d.ICache.Accesses = sub(end.ICache.Accesses, warm.ICache.Accesses, "icache accesses")
	d.ICache.Misses = sub(end.ICache.Misses, warm.ICache.Misses, "icache misses")
	d.ICache.Writebacks = sub(end.ICache.Writebacks, warm.ICache.Writebacks, "icache writebacks")
	d.IssuedPerCycle = end.IssuedPerCycle.Clone()
	if err := d.IssuedPerCycle.SubCounts(warm.IssuedPerCycle); err != nil {
		return d, err
	}
	d.HostAllocs = sub(end.HostAllocs, warm.HostAllocs, "host allocs")
	if end.HostWallSeconds >= warm.HostWallSeconds {
		d.HostWallSeconds = end.HostWallSeconds - warm.HostWallSeconds
	}
	return d, firstErr
}

// StitchStats sums per-segment deltas into one whole-run Stats:
// counters add, histograms merge, host telemetry accumulates. For
// full-warmup segments of one trace the result is bit-identical to the
// monolithic run (see the package comment for why); internal/verify
// pins this.
func StitchStats(parts []Stats) (Stats, error) {
	if len(parts) == 0 {
		return Stats{}, fmt.Errorf("stats: stitching zero segments")
	}
	total := Stats{
		Config:         parts[0].Config,
		Workload:       parts[0].Workload,
		IssuedPerCycle: parts[0].IssuedPerCycle.Clone(),
	}
	for i, p := range parts {
		if p.Config != total.Config || p.Workload != total.Workload {
			return total, fmt.Errorf("stats: stitching %s/%s segment into a %s/%s run",
				p.Config, p.Workload, total.Config, total.Workload)
		}
		total.Cycles += p.Cycles
		total.Committed += p.Committed
		total.EmuSteps += p.EmuSteps
		total.CondBranches += p.CondBranches
		total.Mispredicts += p.Mispredicts
		total.InterClusterUops += p.InterClusterUops
		total.ForwardedLoads += p.ForwardedLoads
		total.SquashedUops += p.SquashedUops
		total.SchedulerStalls += p.SchedulerStalls
		total.PhysRegStalls += p.PhysRegStalls
		total.ROBStalls += p.ROBStalls
		total.Cache.Accesses += p.Cache.Accesses
		total.Cache.Misses += p.Cache.Misses
		total.Cache.Writebacks += p.Cache.Writebacks
		total.ICache.Accesses += p.ICache.Accesses
		total.ICache.Misses += p.ICache.Misses
		total.ICache.Writebacks += p.ICache.Writebacks
		total.HostAllocs += p.HostAllocs
		total.HostWallSeconds += p.HostWallSeconds
		if i > 0 {
			total.IssuedPerCycle.Merge(p.IssuedPerCycle)
		}
	}
	return total, nil
}
