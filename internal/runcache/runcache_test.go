package runcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/errclass"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

func fakeStats(cycles int64) pipeline.Stats {
	h := stats.NewHistogram(8)
	h.Add(3)
	h.Add(5)
	return pipeline.Stats{
		Config:         "cfg",
		Workload:       "wl",
		Cycles:         cycles,
		Committed:      uint64(2 * cycles),
		IssuedPerCycle: h,
	}
}

func TestDoMemoizes(t *testing.T) {
	c := New()
	var calls int32
	compute := func() (pipeline.Stats, error) {
		atomic.AddInt32(&calls, 1)
		return fakeStats(100), nil
	}
	st, hit, err := c.Do("k", compute)
	if err != nil || hit || st.Cycles != 100 {
		t.Fatalf("first Do = %+v, hit=%v, err=%v", st, hit, err)
	}
	st, hit, err = c.Do("k", compute)
	if err != nil || !hit || st.Cycles != 100 {
		t.Fatalf("second Do = %+v, hit=%v, err=%v", st, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Saved() != 1 || cs.Lookups() != 2 {
		t.Errorf("stats = %+v", cs)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New()
	var calls int32
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _, err := c.Do("k", func() (pipeline.Stats, error) {
				atomic.AddInt32(&calls, 1)
				<-release
				return fakeStats(7), nil
			})
			if err != nil || st.Cycles != 7 {
				t.Errorf("Do = %+v, %v", st, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute ran %d times under concurrency, want 1", calls)
	}
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits+cs.Coalesced != n-1 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	var calls int32
	for i := 0; i < 2; i++ {
		_, _, err := c.Do("bad", func() (pipeline.Stats, error) {
			atomic.AddInt32(&calls, 1)
			return pipeline.Stats{}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1 (errors memoized)", calls)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want := fakeStats(42)
	if _, _, err := c.Do("k", func() (pipeline.Stats, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the result without
	// computing, and the histogram survives the JSON round trip.
	c2 := New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	st, hit, err := c2.Do("k", func() (pipeline.Stats, error) {
		t.Fatal("compute called despite disk entry")
		return pipeline.Stats{}, nil
	})
	if err != nil || !hit {
		t.Fatalf("disk Do: hit=%v err=%v", hit, err)
	}
	if st.Cycles != want.Cycles || st.Committed != want.Committed {
		t.Errorf("disk stats = %+v, want %+v", st, want)
	}
	if st.IssuedPerCycle == nil || st.IssuedPerCycle.Total() != 2 || st.IssuedPerCycle.Count(3) != 1 {
		t.Errorf("histogram lost in round trip: %+v", st.IssuedPerCycle)
	}
	if cs := c2.Stats(); cs.DiskHits != 1 || cs.Misses != 0 {
		t.Errorf("stats = %+v", cs)
	}

	// A different key does not collide with the stored entry.
	var computed bool
	if _, hit, _ := c2.Do("other", func() (pipeline.Stats, error) {
		computed = true
		return fakeStats(1), nil
	}); hit || !computed {
		t.Errorf("unrelated key served from disk: hit=%v computed=%v", hit, computed)
	}
}

// TestDiskConcurrentWriters runs two caches over one directory writing
// the same keys concurrently — the regression for the shared fixed-name
// temp file, which let one process rename another's half-written JSON
// into place. Every surviving file must be complete and loadable.
func TestDiskConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	caches := [2]*Cache{New(), New()}
	for _, c := range caches {
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 16
	var wg sync.WaitGroup
	for _, c := range caches {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := "key" + string(rune('a'+k))
				if _, _, err := c.Do(key, func() (pipeline.Stats, error) {
					return fakeStats(int64(k + 1)), nil
				}); err != nil {
					t.Errorf("Do(%s): %v", key, err)
				}
			}
		}()
	}
	wg.Wait()

	// No temp files left behind, and every entry round-trips.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("stale temp file %s left in cache dir", e.Name())
		}
	}
	fresh := New()
	if err := fresh.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := "key" + string(rune('a'+k))
		st, hit, err := fresh.Do(key, func() (pipeline.Stats, error) {
			t.Errorf("key %s not persisted", key)
			return pipeline.Stats{}, nil
		})
		if err != nil || !hit || st.Cycles != int64(k+1) {
			t.Errorf("reload %s: hit=%v cycles=%d err=%v", key, hit, st.Cycles, err)
		}
	}
}

// TestDiskDropsUnusableFiles: a file whose stored key mismatches (hash
// collision) or whose JSON is torn must be deleted on load, not silently
// ignored, so the slot can be rewritten.
func TestDiskDropsUnusableFiles(t *testing.T) {
	for name, contents := range map[string]string{
		"mismatched key": `{"key":"some other key","stats":{}}`,
		"torn JSON":      `{"key":"k","st`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := diskPath(dir, "k")
			if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			c := New()
			if err := c.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			st, hit, err := c.Do("k", func() (pipeline.Stats, error) {
				return fakeStats(9), nil
			})
			if err != nil || hit || st.Cycles != 9 {
				t.Fatalf("Do over bad file: st=%+v hit=%v err=%v", st, hit, err)
			}
			// The bad file was replaced by the fresh result.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("entry not rewritten: %v", err)
			}
			var de diskEntry
			if err := json.Unmarshal(data, &de); err != nil || de.Key != "k" {
				t.Errorf("rewritten entry unusable: key=%q err=%v", de.Key, err)
			}
		})
	}
}

// TestDoPanicUnblocksWaiters is the regression for the daemon-fatal
// deadlock: a panicking compute never closed e.done, so the key was
// permanently poisoned — every coalesced waiter hung forever and every
// later lookup joined them. The panic must still propagate to compute's
// caller, waiters must receive an error, and the key must stay usable.
func TestDoPanicUnblocksWaiters(t *testing.T) {
	c := New()
	entered := make(chan struct{})
	release := make(chan struct{})
	panicker := make(chan any, 1)
	go func() {
		defer func() { panicker <- recover() }()
		c.Do("k", func() (pipeline.Stats, error) {
			close(entered)
			<-release
			panic("simulator bug")
		})
	}()
	<-entered
	// A second goroutine coalesces onto the in-flight computation.
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() (pipeline.Stats, error) {
			t.Error("waiter's compute invoked for an in-flight key")
			return pipeline.Stats{}, nil
		})
		waiterErr <- err
	}()
	// Let the waiter coalesce before unleashing the panic.
	for {
		if cs := c.Stats(); cs.Coalesced == 1 {
			break
		}
	}
	close(release)
	if r := <-panicker; r == nil || r.(string) != "simulator bug" {
		t.Fatalf("panic did not propagate to compute's caller: %v", r)
	}
	err := <-waiterErr
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("coalesced waiter got err=%v, want a panic-reporting error", err)
	}
	// The key is not poisoned: a later lookup recomputes successfully.
	st, hit, err := c.Do("k", func() (pipeline.Stats, error) { return fakeStats(5), nil })
	if err != nil || hit || st.Cycles != 5 {
		t.Fatalf("lookup after panic: st=%+v hit=%v err=%v", st, hit, err)
	}
}

// TestDoTransientErrorsRetry: a transient (environmental) failure is
// delivered but not memoized, so the key recovers on retry — in a
// long-lived server a momentary ENOSPC must not brick a key until
// restart. Deterministic errors stay memoized (TestDoMemoizesErrors).
func TestDoTransientErrorsRetry(t *testing.T) {
	for name, transientErr := range map[string]error{
		"marked":        Transient(errors.New("store unavailable")),
		"os.PathError":  &os.PathError{Op: "write", Path: "trace", Err: syscall.ENOSPC},
		"syscall.Errno": fmt.Errorf("capture: %w", syscall.EMFILE),
	} {
		t.Run(name, func(t *testing.T) {
			c := New()
			var calls int32
			fail := true
			compute := func() (pipeline.Stats, error) {
				atomic.AddInt32(&calls, 1)
				if fail {
					return pipeline.Stats{}, transientErr
				}
				return fakeStats(11), nil
			}
			if _, _, err := c.Do("k", compute); !errors.Is(err, transientErr) && err == nil {
				t.Fatalf("first Do err = %v", err)
			}
			if c.Len() != 0 {
				t.Fatalf("transient failure left %d memoized entries", c.Len())
			}
			fail = false
			st, hit, err := c.Do("k", compute)
			if err != nil || hit || st.Cycles != 11 {
				t.Fatalf("retry after transient failure: st=%+v hit=%v err=%v", st, hit, err)
			}
			if calls != 2 {
				t.Errorf("compute ran %d times, want 2 (fail, retry)", calls)
			}
		})
	}
}

func TestIsTransient(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{errors.New("scheduler spec invalid"), false},
		{fmt.Errorf("wrapped: %w", errors.New("run exceeded cycle bound")), false},
		{Transient(errors.New("flaky")), true},
		{&os.PathError{Op: "open", Path: "x", Err: syscall.ENOENT}, true},
		{fmt.Errorf("save: %w", syscall.ENOSPC), true},
		{os.NewSyscallError("mmap", syscall.ENOMEM), true},
		{nil, false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestSetDirBackfill mirrors the trace pool's SetTraceDir flush test:
// results memoized before the directory was configured must reach the
// disk tier when it is, not linger in-memory only until the process
// dies.
func TestSetDirBackfill(t *testing.T) {
	c := New()
	want := fakeStats(77)
	if _, _, err := c.Do("early", func() (pipeline.Stats, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("deterministic failure")
	if _, _, err := c.Do("bad", func() (pipeline.Stats, error) { return pipeline.Stats{}, boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	// The successful pre-SetDir result is now on disk: a fresh cache over
	// the same directory serves it without computing.
	c2 := New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	st, hit, err := c2.Do("early", func() (pipeline.Stats, error) {
		t.Fatal("compute called despite backfilled entry")
		return pipeline.Stats{}, nil
	})
	if err != nil || !hit || st.Cycles != want.Cycles {
		t.Fatalf("backfilled entry not served: st=%+v hit=%v err=%v", st, hit, err)
	}
	// Error entries are not persisted (errors never are); the key simply
	// recomputes in the new process.
	var computed bool
	if _, hit, _ := c2.Do("bad", func() (pipeline.Stats, error) {
		computed = true
		return fakeStats(1), nil
	}); hit || !computed {
		t.Errorf("error entry leaked to disk: hit=%v computed=%v", hit, computed)
	}
}

// TestLimitLRUOverDisk: with a bound, the memory tier holds the most
// recently used results and older ones fall back to the disk tier.
func TestLimitLRUOverDisk(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	c.SetLimit(2)
	mk := func(n int64) func() (pipeline.Stats, error) {
		return func() (pipeline.Stats, error) { return fakeStats(n), nil }
	}
	c.Do("a", mk(1))
	c.Do("b", mk(2))
	c.Do("a", mk(1)) // touch a: b is now least recently used
	c.Do("c", mk(3)) // evicts b
	if n := c.Len(); n != 2 {
		t.Fatalf("resident entries = %d, want 2", n)
	}
	st, hit, err := c.Do("b", mk(0))
	if err != nil || !hit || st.Cycles != 2 {
		t.Fatalf("evicted entry not recalled from disk: st=%+v hit=%v err=%v", st, hit, err)
	}
	cs := c.Stats()
	if cs.Evictions < 1 || cs.DiskHits != 1 || cs.Misses != 3 {
		t.Errorf("stats = %+v, want >=1 eviction, 1 disk hit, 3 misses", cs)
	}
	// "a" stayed warm the whole time.
	if st, hit, _ := c.Do("a", mk(0)); !hit || st.Cycles != 1 {
		t.Errorf("warm entry lost: st=%+v hit=%v", st, hit)
	}
}

// TestLimitWithoutDirRecomputes: bounding memory without a disk tier
// turns eviction into recomputation — still correct, just slower.
func TestLimitWithoutDirRecomputes(t *testing.T) {
	c := New()
	c.SetLimit(1)
	var calls int32
	compute := func() (pipeline.Stats, error) {
		atomic.AddInt32(&calls, 1)
		return fakeStats(4), nil
	}
	c.Do("a", compute)
	c.Do("b", compute) // evicts a
	st, hit, err := c.Do("a", compute)
	if err != nil || hit || st.Cycles != 4 {
		t.Fatalf("recompute after eviction: st=%+v hit=%v err=%v", st, hit, err)
	}
	if calls != 3 {
		t.Errorf("compute ran %d times, want 3", calls)
	}
}

// TestSharedLeaseDedup is the cross-process single-flight contract,
// exercised by two Cache instances over one directory (the in-process
// stand-in for two daemons on one store): while one computes a key under
// its lease, the other waits for the result file instead of simulating.
func TestSharedLeaseDedup(t *testing.T) {
	dir := t.TempDir()
	a, b := New(), New()
	for _, c := range [...]*Cache{a, b} {
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		c.SetShared(true)
	}
	var calls int32
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Do("k", func() (pipeline.Stats, error) {
			atomic.AddInt32(&calls, 1)
			close(entered)
			<-release
			return fakeStats(21), nil
		})
		done <- err
	}()
	<-entered
	// Give b a couple of poll intervals against the held lease, then let
	// a finish.
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(release)
	}()
	st, hit, err := b.Do("k", func() (pipeline.Stats, error) {
		atomic.AddInt32(&calls, 1)
		return fakeStats(99), nil
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err != nil || !hit || st.Cycles != 21 {
		t.Fatalf("waiter result: st=%+v hit=%v err=%v", st, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times across two shared caches, want 1", calls)
	}
	cs := b.Stats()
	if cs.DiskHits != 1 || cs.LeaseWaits != 1 || cs.Misses != 0 {
		t.Errorf("waiter stats = %+v, want 1 disk hit, 1 lease wait, 0 misses", cs)
	}
	// No lock files survive.
	locks, _ := filepath.Glob(filepath.Join(dir, "*.lock"))
	if len(locks) != 0 {
		t.Errorf("stale lock files left: %v", locks)
	}
}

// TestSharedStaleLockRecovery: a lock file abandoned by a crashed
// process (old mtime, no holder refreshing it) must be broken and taken
// over, not waited on forever.
func TestSharedStaleLockRecovery(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.SetShared(true)
	lock := diskPath(dir, "k") + ".lock"
	if err := os.WriteFile(lock, []byte("pid 0 crashed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	st, hit, err := c.Do("k", func() (pipeline.Stats, error) { return fakeStats(8), nil })
	if err != nil || hit || st.Cycles != 8 {
		t.Fatalf("takeover Do: st=%+v hit=%v err=%v", st, hit, err)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Errorf("lock not cleaned up after takeover: %v", err)
	}
}

// TestSharedTransientFailureHandsOff: when the lease holder fails
// transiently (no result file is ever written), a waiting process must
// eventually acquire the lease itself and compute, not hang.
func TestSharedTransientFailureHandsOff(t *testing.T) {
	dir := t.TempDir()
	a, b := New(), New()
	for _, c := range [...]*Cache{a, b} {
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		c.SetShared(true)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Do("k", func() (pipeline.Stats, error) {
			close(entered)
			<-release
			return pipeline.Stats{}, Transient(errors.New("disk full"))
		})
		done <- err
	}()
	<-entered
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(release)
	}()
	st, hit, err := b.Do("k", func() (pipeline.Stats, error) { return fakeStats(13), nil })
	if werr := <-done; !errors.Is(werr, ErrTransient) {
		t.Fatalf("holder err = %v, want transient", werr)
	}
	if err != nil || hit || st.Cycles != 13 {
		t.Fatalf("waiter after holder's transient failure: st=%+v hit=%v err=%v", st, hit, err)
	}
}

func TestReset(t *testing.T) {
	c := New()
	if _, _, err := c.Do("k", func() (pipeline.Stats, error) { return fakeStats(1), nil }); err != nil {
		t.Fatal(err)
	}
	c.RecordUncacheable()
	c.Reset()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Errorf("reset left len=%d stats=%+v", c.Len(), c.Stats())
	}
}

// TestDoCorruptNotMemoized pins the corrupt-abandon path: a compute
// failing with a corrupt-artifact error (a torn trace the pool deleted,
// a mangled cache entry) must not be memoized — the artifact is rebuilt
// by the layer that found it, so a later lookup must retry. Before the
// errclass split, such errors were neither ErrTransient nor os errors,
// so a daemon memoized them forever and the key stayed bricked after
// the store had healed.
func TestDoCorruptNotMemoized(t *testing.T) {
	c := New()
	var calls int32
	compute := func() (pipeline.Stats, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return pipeline.Stats{}, fmt.Errorf("replay: %w", errclass.Corrupt(errors.New("chunk checksum mismatch")))
		}
		return fakeStats(7), nil
	}
	_, hit, err := c.Do("k", compute)
	if hit || !errclass.IsCorrupt(err) {
		t.Fatalf("first Do: hit=%v err=%v, want corrupt miss", hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("corrupt error left %d entries memoized", c.Len())
	}
	st, hit, err := c.Do("k", compute)
	if err != nil || hit || st.Cycles != 7 {
		t.Fatalf("retry Do = %+v, hit=%v, err=%v, want recomputed success", st, hit, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (corrupt error retried)", calls)
	}
}
