// Package bpred implements the branch direction predictors used by the
// timing simulator. The paper's baseline (Table 3) is McFarling's gshare
// with 4K 2-bit counters and 12 bits of global history; bimodal and
// static always-taken predictors are provided for ablation studies.
//
//ce:deterministic
package bpred

import "fmt"

// Predictor predicts conditional branch directions. Unconditional control
// instructions are predicted perfectly by the pipeline (Table 3) and never
// reach a Predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc
	// (an instruction index).
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint32, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Gshare is McFarling's gshare predictor: a table of 2-bit saturating
// counters indexed by the branch PC XORed with the global history.
type Gshare struct {
	counters []uint8
	history  uint32
	histBits uint
	mask     uint32
}

// NewGshare returns a gshare predictor with 2^tableBits counters and
// histBits bits of global history. The paper's configuration is
// NewGshare(12, 12): 4K counters, 12-bit history.
func NewGshare(tableBits, histBits uint) *Gshare {
	g := &Gshare{
		counters: make([]uint8, 1<<tableBits),
		histBits: histBits,
		mask:     1<<tableBits - 1,
	}
	// Counters initialized to weakly taken, the usual convention.
	for i := range g.counters {
		g.counters[i] = 2
	}
	return g
}

func (g *Gshare) index(pc uint32) uint32 {
	return (pc ^ (g.history & (1<<g.histBits - 1))) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint32) bool { return g.counters[g.index(pc)] >= 2 }

// Update implements Predictor.
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	if taken {
		if g.counters[i] < 3 {
			g.counters[i]++
		}
	} else if g.counters[i] > 0 {
		g.counters[i]--
	}
	g.history = g.history<<1 | b2u(taken)
}

// Name implements Predictor.
func (g *Gshare) Name() string {
	return fmt.Sprintf("gshare-%dx2bit-h%d", len(g.counters), g.histBits)
}

// Bimodal is a per-PC table of 2-bit saturating counters.
type Bimodal struct {
	counters []uint8
	mask     uint32
}

// NewBimodal returns a bimodal predictor with 2^tableBits counters.
func NewBimodal(tableBits uint) *Bimodal {
	b := &Bimodal{counters: make([]uint8, 1<<tableBits), mask: 1<<tableBits - 1}
	for i := range b.counters {
		b.counters[i] = 2
	}
	return b
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint32) bool { return b.counters[pc&b.mask] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := pc & b.mask
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%dx2bit", len(b.counters)) }

// Static always predicts the same direction.
type Static struct{ Taken bool }

// Predict implements Predictor.
func (s Static) Predict(uint32) bool { return s.Taken }

// Update implements Predictor.
func (Static) Update(uint32, bool) {}

// Name implements Predictor.
func (s Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
