// Package prog contains the benchmark programs used to evaluate the
// microarchitectures, written in the assembly language of package asm.
//
// The paper evaluated seven programs from the SPEC'95 integer suite
// (compress, gcc, go, li, m88ksim, perl, vortex). SPEC'95 binaries cannot
// be redistributed, so each workload here is a from-scratch kernel whose
// algorithmic structure mirrors the corresponding SPEC program: the same
// kind of dependence chains, branch behaviour and memory access patterns
// that the issue logic and steering heuristics are sensitive to. Inputs
// are generated deterministically (linear congruential generators seeded
// per workload), and every workload carries an independent Go reference
// implementation; the test suite checks that the assembly program and the
// Go reference produce identical outputs, validating both the programs and
// the emulator.
package prog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Workload is one benchmark program.
type Workload struct {
	// Name is the SPEC'95 program the kernel mirrors, e.g. "compress".
	Name string
	// Description summarizes the kernel and what behaviour it models.
	Description string
	// Source is the assembly source text.
	Source string
	// Reference computes the expected Out-instruction values with an
	// independent Go implementation of the same algorithm.
	Reference func() []int32
	// Extension marks workloads beyond the paper's seven benchmarks;
	// they are excluded from Names()/All() (the paper's figure set) but
	// returned by ExtendedNames()/AllExtended().
	Extension bool
	// Huge marks benchmark-scale workloads (hundreds of millions of
	// dynamic instructions) that exist to exercise streaming capture and
	// sampled simulation. They are excluded from ExtendedNames()/
	// AllExtended() too — running one in the unit-test differentials
	// would dominate the suite — and reachable only by name (ByName,
	// HugeNames).
	Huge bool

	once sync.Once
	prog *isa.Program
	err  error
}

// Program assembles the workload (cached after the first call).
func (w *Workload) Program() (*isa.Program, error) {
	w.once.Do(func() {
		w.prog, w.err = asm.Assemble(w.Name+".s", w.Source)
		if w.err == nil {
			w.prog.Name = w.Name
		}
	})
	return w.prog, w.err
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("prog: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
}

// Names returns the paper's seven workload names in figure order
// (extensions excluded).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n, w := range registry {
		if !w.Extension {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ExtendedNames returns every registered workload, including extensions
// (but not benchmark-scale Huge workloads; see HugeNames).
func ExtendedNames() []string {
	names := make([]string, 0, len(registry))
	for n, w := range registry {
		if !w.Huge {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// HugeNames returns the benchmark-scale workloads, ordered by name.
func HugeNames() []string {
	var names []string
	for n, w := range registry {
		if w.Huge {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// All returns the paper's workloads, ordered by name.
func All() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// AllExtended returns every workload including extensions, ordered by name.
func AllExtended() []*Workload {
	var out []*Workload
	for _, n := range ExtendedNames() {
		out = append(out, registry[n])
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prog: unknown workload %q (want one of %v)", name, Names())
	}
	return w, nil
}

// lcg advances the shared linear congruential generator. Both the assembly
// programs and the Go references use this exact recurrence (int32
// wraparound), so their input streams match bit for bit.
func lcg(s int32) int32 { return s*1103515245 + 12345 }
