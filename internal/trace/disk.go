package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

// On-disk layout (all integers little-endian):
//
//	magic     "CETRACE\x02"           8 bytes
//	progHash  ProgHash(prog)         32 bytes
//	entryPC   uint32                  4 bytes
//	steps     uint64                  8 bytes
//	nOutput   uint32                  4 bytes
//	output    nOutput × int32         4·nOutput bytes
//	stateHash final StateHash        32 bytes
//	packedLen uint64                  8 bytes
//	packed    the dynamic stream     packedLen bytes
//	nBounds   uint32                  4 bytes
//	bounds    nBounds × {step uint64, pos uint64, pc uint32}
//	checksum  sha256 of all above    32 bytes
//
// Version 2 appends the warm-start boundary table (see segment.go) after
// the packed stream. Version-1 files fail the magic check and are
// deleted and recaptured like any other stale trace — the table is a
// property of the capture, so it cannot be synthesized from a v1 file
// without replaying it anyway.
//
// The progHash pins the trace to one exact program image; the trailing
// checksum detects truncation and bit rot. Readers treat any mismatch as
// "no trace": the caller deletes the file and recaptures, mirroring
// runcache.loadDisk's corrupt-entry hardening.

var diskMagic = [8]byte{'C', 'E', 'T', 'R', 'A', 'C', 'E', 2}

const boundaryBytes = 8 + 8 + 4

const diskOverhead = 8 + 32 + 4 + 8 + 4 + 32 + 8 + 4 + 32

// DiskPath returns the canonical file name for a program's trace under
// dir: content-addressed by program hash, so a recompiled program gets a
// fresh slot instead of a mismatch error.
func DiskPath(dir string, p *isa.Program) string { return diskPath(dir, ProgHash(p)) }

func diskPath(dir string, ph [32]byte) string {
	return filepath.Join(dir, hex.EncodeToString(ph[:])[:32]+".cetrace")
}

// Marshal serializes the trace into its canonical byte form.
func (t *Trace) Marshal() []byte {
	buf := make([]byte, 0, diskOverhead+4*len(t.output)+len(t.packed)+boundaryBytes*len(t.bounds))
	buf = append(buf, diskMagic[:]...)
	ph := ProgHash(t.prog)
	buf = append(buf, ph[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, t.entryPC)
	buf = binary.LittleEndian.AppendUint64(buf, t.n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.output)))
	for _, v := range t.output {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = append(buf, t.stateHash[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.packed)))
	buf = append(buf, t.packed...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.bounds)))
	for _, b := range t.bounds {
		buf = binary.LittleEndian.AppendUint64(buf, b.Step)
		buf = binary.LittleEndian.AppendUint64(buf, b.Pos)
		buf = binary.LittleEndian.AppendUint32(buf, b.PC)
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Unmarshal parses a serialized trace and binds it to p, rejecting
// corrupt bytes and traces of any other program image.
func Unmarshal(data []byte, p *isa.Program) (*Trace, error) {
	if len(data) < diskOverhead {
		return nil, fmt.Errorf("trace: file too short (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-32], data[len(data)-32:]
	if sha256.Sum256(body) != [32]byte(sum) {
		return nil, fmt.Errorf("trace: checksum mismatch (truncated or corrupt file)")
	}
	if [8]byte(body[:8]) != diskMagic {
		return nil, fmt.Errorf("trace: bad magic (not a trace file, or an incompatible format version)")
	}
	body = body[8:]
	ph := [32]byte(body[:32])
	if ph != ProgHash(p) {
		return nil, fmt.Errorf("trace: trace was captured from a different build of %s", p.Name)
	}
	body = body[32:]
	t := &Trace{prog: p}
	t.entryPC = binary.LittleEndian.Uint32(body)
	t.n = binary.LittleEndian.Uint64(body[4:])
	nOut := binary.LittleEndian.Uint32(body[12:])
	body = body[16:]
	if uint64(len(body)) < uint64(nOut)*4+32+8 {
		return nil, fmt.Errorf("trace: output section overruns the file")
	}
	t.output = make([]int32, nOut)
	for i := range t.output {
		t.output[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	body = body[4*nOut:]
	t.stateHash = [32]byte(body[:32])
	packedLen := binary.LittleEndian.Uint64(body[32:40])
	body = body[40:]
	if uint64(len(body)) < packedLen+4 {
		return nil, fmt.Errorf("trace: packed stream is %d bytes, header says %d", len(body), packedLen)
	}
	t.packed = body[:packedLen]
	body = body[packedLen:]
	nBounds := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint64(len(body)) != uint64(nBounds)*boundaryBytes {
		return nil, fmt.Errorf("trace: boundary table is %d bytes, header says %d entries", len(body), nBounds)
	}
	t.bounds = make([]Boundary, nBounds)
	for i := range t.bounds {
		t.bounds[i] = Boundary{
			Step: binary.LittleEndian.Uint64(body),
			Pos:  binary.LittleEndian.Uint64(body[8:]),
			PC:   binary.LittleEndian.Uint32(body[16:]),
		}
		body = body[boundaryBytes:]
	}
	if t.entryPC != entryPC(p) {
		return nil, fmt.Errorf("trace: entry pc %d does not match the program's %d", t.entryPC, entryPC(p))
	}
	return t, nil
}

// EnsureDir creates dir (and any parents) for trace storage.
func EnsureDir(dir string) error { return os.MkdirAll(dir, 0o755) }

// WriteFile persists the trace under dir at its canonical path, via a
// uniquely named temp file and rename so concurrent writers of the same
// (byte-identical) trace cannot tear each other's files.
func (t *Trace) WriteFile(dir string) error {
	data := t.Marshal()
	tmp, err := os.CreateTemp(dir, "trace-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	path := diskPath(dir, ProgHash(t.prog))
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile loads p's trace from dir. A missing file returns os.ErrNotExist
// (wrapped); a corrupt, truncated or mismatched file is deleted so the
// slot can be recaptured, and reported as an error.
func ReadFile(dir string, p *isa.Program) (*Trace, error) {
	path := diskPath(dir, ProgHash(p))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Unmarshal(data, p)
	if err != nil {
		_ = os.Remove(path)
		return nil, err
	}
	return t, nil
}
