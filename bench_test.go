package ce

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation. Each benchmark regenerates its experiment and
// reports the headline numbers as custom metrics (run with -v to also see
// the full tables; the cmd/cedelay and cmd/cesweep tools print the same
// rows directly).

import (
	"testing"

	"repro/internal/delaymodel"
	"repro/internal/emu"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/vlsi"
)

func BenchmarkFig3RenameDelay(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		for _, tech := range vlsi.Technologies() {
			for _, iw := range []int{2, 4, 8} {
				d, err := delaymodel.Rename(tech, iw)
				if err != nil {
					b.Fatal(err)
				}
				total = d.Total()
			}
		}
	}
	tbl, err := Figure3()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(total, "ps/rename-8way-0.18um")
}

func BenchmarkFig5WakeupDelay(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for ws := 8; ws <= 64; ws += 8 {
			for _, iw := range []int{2, 4, 8} {
				d, err := delaymodel.Wakeup(vlsi.Tech018, iw, ws)
				if err != nil {
					b.Fatal(err)
				}
				last = d.Total()
			}
		}
	}
	tbl, err := Figure5()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(last, "ps/wakeup-8way-64")
}

func BenchmarkFig6WakeupScaling(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		for _, tech := range vlsi.Technologies() {
			d, err := delaymodel.Wakeup(tech, 8, 64)
			if err != nil {
				b.Fatal(err)
			}
			frac = (d.TagDrive + d.TagMatch) / d.Total()
		}
	}
	tbl, err := Figure6()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(frac*100, "%broadcast-0.18um")
}

func BenchmarkFig8SelectDelay(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, tech := range vlsi.Technologies() {
			for _, ws := range []int{16, 32, 64, 128} {
				d, err := delaymodel.Select(tech, ws)
				if err != nil {
					b.Fatal(err)
				}
				last = d.Total()
			}
		}
	}
	tbl, err := Figure8()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(last, "ps/select-128-0.18um")
}

func BenchmarkTable1BypassDelay(b *testing.B) {
	var d8 float64
	for i := 0; i < b.N; i++ {
		d4, err := delaymodel.Bypass(vlsi.Tech018, 4)
		if err != nil {
			b.Fatal(err)
		}
		d8v, err := delaymodel.Bypass(vlsi.Tech018, 8)
		if err != nil {
			b.Fatal(err)
		}
		_ = d4
		d8 = d8v.Delay
	}
	tbl, err := Table1()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(d8, "ps/bypass-8way")
}

func BenchmarkTable2Overall(b *testing.B) {
	var crit float64
	for i := 0; i < b.N; i++ {
		for _, tech := range vlsi.Technologies() {
			for _, pt := range []struct{ iw, ws int }{{4, 32}, {8, 64}} {
				o, err := delaymodel.Analyze(tech, pt.iw, pt.ws)
				if err != nil {
					b.Fatal(err)
				}
				crit = o.CriticalPath()
			}
		}
	}
	tbl, err := Table2()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(crit, "ps/critical-8way-0.18um")
}

func BenchmarkTable4ReservationTable(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		var err error
		d, err = delaymodel.ReservationTable(vlsi.Tech018, 8, 128)
		if err != nil {
			b.Fatal(err)
		}
	}
	tbl, err := Table4()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", tbl)
	b.ReportMetric(d, "ps/restable-8way")
}

// simFigure runs an IPC-comparison figure once per b.N iteration and
// reports the mean IPC of each configuration.
func simFigure(b *testing.B, fn func() (*IPCComparison, error), title string) {
	b.Helper()
	var cmp *IPCComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", cmp.IPCTable(title))
	var committed uint64
	for ci := range cmp.Configs {
		var mean float64
		for wi := range cmp.Workloads {
			mean += cmp.Results[ci][wi].IPC()
			committed += cmp.Results[ci][wi].Committed
		}
		b.ReportMetric(mean/float64(len(cmp.Workloads)), "IPC/"+cmp.Configs[ci].Name)
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "simulated-insts/s")
}

func BenchmarkFig13DependenceIPC(b *testing.B) {
	simFigure(b, Figure13, "Figure 13")
}

func BenchmarkFig15ClusteredIPC(b *testing.B) {
	simFigure(b, Figure15, "Figure 15")
}

func BenchmarkFig17ClusterDesignSpace(b *testing.B) {
	var cmp *IPCComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = Figure17()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", cmp.IPCTable("Figure 17 (top)"))
	b.Logf("\n%s", cmp.BypassTable("Figure 17 (bottom)"))
	for ci := range cmp.Configs {
		var ipc, byp float64
		for wi := range cmp.Workloads {
			ipc += cmp.Results[ci][wi].IPC()
			byp += cmp.Results[ci][wi].InterClusterFrequency()
		}
		n := float64(len(cmp.Workloads))
		b.ReportMetric(ipc/n, "IPC/"+cmp.Configs[ci].Name)
		b.ReportMetric(byp/n*100, "%xbypass/"+cmp.Configs[ci].Name)
	}
}

func BenchmarkSpeedupEstimate(b *testing.B) {
	var sum SpeedupSummary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = SpeedupEstimate()
		if err != nil {
			b.Fatal(err)
		}
	}
	sws, s, err := SpeedupEstimate()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", SpeedupTable(sws, s))
	b.ReportMetric(sum.Arith, "net-speedup")
}

// BenchmarkSimulatorThroughput measures the raw speed of the timing
// simulator itself (simulated instructions per wall-clock second) on the
// baseline configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := prog.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	var committed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := pipeline.New(BaselineConfig(), p)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		committed += st.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "simulated-insts/s")
}

// BenchmarkEmulatorThroughput measures the functional emulator alone.
func BenchmarkEmulatorThroughput(b *testing.B) {
	w, err := prog.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	var executed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.New(p)
		for !m.Halted() {
			if _, err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
		executed += m.Executed
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkFrontier runs the full design-space ranking (extension).
func BenchmarkFrontier(b *testing.B) {
	var pts []FrontierPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = Frontier()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", FrontierTable(pts))
	if len(pts) > 0 {
		b.ReportMetric(pts[0].BIPS, "best-BIPS")
	}
}

// BenchmarkWrongPathSimulation measures the speculative-execution
// simulator against the stall-model baseline (extension).
func BenchmarkWrongPathSimulation(b *testing.B) {
	cfg := BaselineConfig()
	cfg.WrongPathExecution = true
	var committed uint64
	for i := 0; i < b.N; i++ {
		st, err := Run(cfg, "gcc")
		if err != nil {
			b.Fatal(err)
		}
		committed += st.Committed + st.SquashedUops
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "simulated-insts/s")
}
