// Package dirlint makes malformed //ce: directives loud. The directive
// system is the enforcement surface for every other contract in this
// repo; a typo'd verb (//ce:nondetok), a hatch missing its mandatory
// reason, or a second directive swallowed into the first one's reason
// text would otherwise silently suppress nothing — or worse, convince a
// reader that something is suppressed when it isn't. dirlint turns each
// of those into a finding so a broken hatch can never pass CI.
package dirlint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the dirlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "dirlint",
	Doc:  "flags malformed //ce: directives (unknown verbs, missing reasons, duplicates)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, p := range directive.Problems(pass.Fset, f) {
			pass.Report(analysis.Diagnostic{
				Pos:      p.Pos,
				Category: p.Category,
				Message:  p.Message,
			})
		}
	}
	return nil, nil
}
