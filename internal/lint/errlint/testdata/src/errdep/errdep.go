// Package errdep is an unmarked helper library: errlint computes
// ErrFacts for its exported functions (and reports nothing here), so
// //ce:classify-errors callers see the raw source at the bottom.
package errdep

import (
	"errors"
	"fmt"
	"os"
)

// ErrDisk is a classified sentinel for disk failures.
var ErrDisk = errors.New("disk failure")

// Classify wraps err into ErrDisk.
//
//ce:classifier
func Classify(err error) error {
	return fmt.Errorf("%w: %w", ErrDisk, err)
}

// Load returns the raw read error — unclassified.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Probe leaks the raw error one hop down, through Load.
func Probe(path string) error {
	_, err := Load(path)
	return err
}

// Size is pure.
func Size(b []byte) int { return len(b) }
