// Package clitest builds the command-line tools and exercises them
// end-to-end.
package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "cebin")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"cedelay", "cesim", "cesweep", "cesweepd", "ceasm"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "repro/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			os.Stderr.Write(out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest → repo root
}

func run(t *testing.T, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func mustRun(t *testing.T, tool string, args ...string) string {
	t.Helper()
	out, err := run(t, tool, args...)
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return out
}

func TestCedelayTables(t *testing.T) {
	out := mustRun(t, "cedelay", "-table", "2")
	for _, want := range []string{"Table 2", "1577.9", "0.18um"} {
		if !strings.Contains(out, want) {
			t.Errorf("cedelay -table 2 missing %q:\n%s", want, out)
		}
	}
	out = mustRun(t, "cedelay", "-fig", "5")
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "8-way") {
		t.Errorf("cedelay -fig 5 output wrong:\n%s", out)
	}
	out = mustRun(t, "cedelay", "-point", "0.18um,8,64")
	if !strings.Contains(out, "critical path") {
		t.Errorf("cedelay -point output wrong:\n%s", out)
	}
	out = mustRun(t, "cedelay", "-table", "1", "-csv")
	if !strings.Contains(out, "issue width,wire length (lambda),delay (ps)") {
		t.Errorf("cedelay CSV output wrong:\n%s", out)
	}
}

func TestCedelayErrors(t *testing.T) {
	if out, err := run(t, "cedelay"); err == nil {
		t.Errorf("cedelay with no flags succeeded:\n%s", out)
	}
	if out, err := run(t, "cedelay", "-point", "bogus"); err == nil {
		t.Errorf("cedelay with bad point succeeded:\n%s", out)
	}
	if out, err := run(t, "cedelay", "-point", "1.5um,8,64"); err == nil {
		t.Errorf("cedelay with unknown tech succeeded:\n%s", out)
	}
}

func TestCesimRunAndTimeline(t *testing.T) {
	out := mustRun(t, "cesim", "-config", "dependence", "-workload", "micro.chain", "-timeline", "5")
	for _, want := range []string{"IPC:", "committed instructions:", "pipeline (cycles from start)"} {
		if !strings.Contains(out, want) {
			t.Errorf("cesim output missing %q:\n%s", want, out)
		}
	}
	out = mustRun(t, "cesim", "-list")
	if !strings.Contains(out, "configurations:") || !strings.Contains(out, "compress") {
		t.Errorf("cesim -list output wrong:\n%s", out)
	}
	if out, err := run(t, "cesim", "-config", "bogus"); err == nil {
		t.Errorf("cesim with unknown config succeeded:\n%s", out)
	}
	if out, err := run(t, "cesim", "-workload", "bogus"); err == nil {
		t.Errorf("cesim with unknown workload succeeded:\n%s", out)
	}
}

func TestCeasmPipeline(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	bin := filepath.Join(dir, "prog.bin")
	program := `
		.text
main:	li   $t0, 6
		li   $t1, 7
		mul  $t2, $t0, $t1
		out  $t2
		halt
	`
	if err := os.WriteFile(src, []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}
	// Assemble → run from source.
	out := mustRun(t, "ceasm", "-run", src)
	if !strings.Contains(out, "out[0] = 42") {
		t.Errorf("ceasm -run output wrong:\n%s", out)
	}
	// Assemble → object → run from the binary.
	mustRun(t, "ceasm", "-run", src, "-o", bin)
	out = mustRun(t, "ceasm", "-run", bin)
	if !strings.Contains(out, "out[0] = 42") {
		t.Errorf("ceasm binary run output wrong:\n%s", out)
	}
	// Disassembly includes the mnemonics.
	out = mustRun(t, "ceasm", "-dump", src)
	if !strings.Contains(out, "mul $t2, $t0, $t1") || !strings.Contains(out, "main:") {
		t.Errorf("ceasm -dump output wrong:\n%s", out)
	}
	// Built-in workload dump.
	out = mustRun(t, "ceasm", "-workload", "li", "-dump", "")
	if !strings.Contains(out, "instructions") {
		t.Errorf("ceasm workload dump wrong:\n%s", out)
	}
	// Assembly errors carry positions.
	bad := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(bad, []byte("\t.text\n\tfrob $t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := run(t, "ceasm", "-run", bad); err == nil || !strings.Contains(out, "bad.s:2") {
		t.Errorf("ceasm bad input: err=%v out=%s", err, out)
	}
}

func TestCesweepFigure13(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	out := mustRun(t, "cesweep", "-fig", "13")
	for _, want := range []string{"Figure 13", "compress", "vortex", "dependence-8fifo-x8"} {
		if !strings.Contains(out, want) {
			t.Errorf("cesweep -fig 13 missing %q:\n%s", want, out)
		}
	}
	if out, err := run(t, "cesweep"); err == nil {
		t.Errorf("cesweep with no flags succeeded:\n%s", out)
	}
}

func TestCesweepUnknownFigure(t *testing.T) {
	out, err := run(t, "cesweep", "-fig", "14")
	if err == nil {
		t.Fatalf("cesweep -fig 14 succeeded:\n%s", out)
	}
	if !strings.Contains(out, "unknown figure 14 (want 13, 15 or 17)") {
		t.Errorf("cesweep -fig 14 error not explicit:\n%s", out)
	}
	if strings.Contains(out, "nothing selected") {
		t.Errorf("cesweep -fig 14 still reports the misleading fall-through error:\n%s", out)
	}
}

// TestCesweepFlushesMetricsOnError: when a sweep invocation fails after
// some runs completed, the metrics file and -v cache statistics must
// still cover the completed runs — the regression for run() returning
// early without calling finish(), which left -metrics-json as the empty
// pre-flight file.
func TestCesweepFlushesMetricsOnError(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	// -speedup completes its matrix, then the unknown figure errors out.
	out, err := run(t, "cesweep", "-speedup", "-fig", "14", "-v", "-metrics-json", metrics)
	if err == nil {
		t.Fatalf("cesweep -speedup -fig 14 succeeded:\n%s", out)
	}
	if !strings.Contains(out, "unknown figure 14") {
		t.Errorf("missing figure error:\n%s", out)
	}
	if !strings.Contains(out, "cesweep: cache:") {
		t.Errorf("-v cache statistics not printed on the error path:\n%s", out)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file not written on error path: %v", err)
	}
	var dump struct {
		Runs []struct {
			Cycles int64 `json:"cycles"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("metrics JSON malformed (empty pre-flight file?): %v\n%s", err, data)
	}
	if len(dump.Runs) == 0 {
		t.Fatal("metrics file has no runs despite a completed -speedup sweep")
	}
	for _, r := range dump.Runs {
		if r.Cycles <= 0 {
			t.Errorf("degenerate run metric on error path: %+v", r)
		}
	}
}

func TestCesweepObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	cacheDir := filepath.Join(dir, "runs")
	// -fig 15 and -speedup in one invocation: the speedup estimate reuses
	// the Figure 15 matrix, so -v must report saved simulator runs.
	out := mustRun(t, "cesweep", "-fig", "15", "-speedup",
		"-v", "-metrics-json", metrics, "-cache-dir", cacheDir)
	for _, want := range []string{"Figure 15", "geomean", "cesweep: cache:", "simulator runs saved", "Mcyc/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("cesweep -v output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var dump struct {
		Runs []struct {
			Config   string  `json:"config"`
			Workload string  `json:"workload"`
			Cached   bool    `json:"cached"`
			Cycles   int64   `json:"cycles"`
			IPC      float64 `json:"ipc"`
		} `json:"runs"`
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("metrics JSON malformed: %v\n%s", err, data)
	}
	// 14 fresh pairs for Figure 15, then 14 cache hits for the estimate.
	if len(dump.Runs) != 28 {
		t.Errorf("metrics recorded %d runs, want 28", len(dump.Runs))
	}
	if dump.Cache.Misses != 14 || dump.Cache.Hits != 14 {
		t.Errorf("cache counters = %+v, want 14 misses / 14 hits", dump.Cache)
	}
	for _, r := range dump.Runs {
		if r.Cycles <= 0 || r.IPC <= 0 {
			t.Errorf("degenerate run metric: %+v", r)
		}
	}

	// A second process over the same -cache-dir simulates nothing.
	out = mustRun(t, "cesweep", "-fig", "15", "-v", "-cache-dir", cacheDir)
	if !strings.Contains(out, "14 disk hits, 0 misses") {
		t.Errorf("disk cache not used on rerun:\n%s", out)
	}
}

// TestCesweepTraceDir exercises the trace pool's disk spillover end to
// end: a cold run captures and persists one trace per workload, a warm
// run reuses every file without re-executing, and corrupt or truncated
// files are dropped and recaptured rather than trusted or fatal.
func TestCesweepTraceDir(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	traces := filepath.Join(t.TempDir(), "traces")
	// Cold: Figure 13 runs seven workloads; each is captured once.
	out := mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "7 captured, 0 loaded from disk") {
		t.Errorf("cold run did not capture every workload:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(traces, "*.cetrace"))
	if err != nil || len(files) != 7 {
		t.Fatalf("cold run left %d trace files (err %v), want 7", len(files), err)
	}

	// Warm: every trace is loaded, nothing is re-executed.
	out = mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "0 captured, 7 loaded from disk") {
		t.Errorf("warm run did not reuse the traces:\n%s", out)
	}
	if !strings.Contains(out, "0 steps executed") {
		t.Errorf("warm run still executed instructions:\n%s", out)
	}

	// Damage two files: truncate one, flip a bit in another. Both must be
	// detected, dropped and recaptured; the rest still load.
	sort.Strings(files)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The truncated file fails at open and is recaptured up front. The
	// flipped file opens fine — chunk checksums verify lazily, so the
	// damage only surfaces mid-replay — and is then dropped and
	// recaptured transparently: 2 captures, but 6 loads (the flipped
	// file counted as a load before it was caught).
	out = mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "2 captured, 6 loaded from disk") {
		t.Errorf("damaged traces not dropped and recaptured:\n%s", out)
	}
	if !strings.Contains(out, "1 corrupt traces dropped") {
		t.Errorf("mid-replay corruption not counted:\n%s", out)
	}

	// The recaptured files are whole again.
	out = mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "0 captured, 7 loaded from disk") {
		t.Errorf("recaptured traces not reusable:\n%s", out)
	}
}

// TestCesweepStaleTraceFormat: a hand-written v2 trace file at the
// canonical path must be rejected with an explicit format message and
// recaptured in the current format, not trusted and not fatal.
func TestCesweepStaleTraceFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	traces := filepath.Join(t.TempDir(), "traces")
	if err := os.MkdirAll(traces, 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	// A structurally recognizable v2 file: old magic, right program
	// hash, padded past the minimum file size so the version check (not
	// the length check) is what rejects it.
	hash := trace.ProgHash(p)
	hdr := append([]byte("CETRACE\x02"), hash[:]...)
	hdr = append(hdr, make([]byte, 40)...)
	if err := os.WriteFile(trace.DiskPath(traces, p), hdr, 0o644); err != nil {
		t.Fatal(err)
	}

	out := mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "format v2 < v3; recapturing") {
		t.Errorf("stale v2 trace not called out:\n%s", out)
	}
	if !strings.Contains(out, "7 captured, 0 loaded from disk") {
		t.Errorf("stale trace not recaptured:\n%s", out)
	}
	// The recapture left a current-format file behind.
	out = mustRun(t, "cesweep", "-fig", "13", "-v", "-trace-dir", traces)
	if !strings.Contains(out, "0 captured, 7 loaded from disk") {
		t.Errorf("recaptured trace not reusable:\n%s", out)
	}
	if strings.Contains(out, "recapturing") {
		t.Errorf("recaptured trace still reported stale:\n%s", out)
	}
}

// TestCesweepSegmentedCorruptChunk: with segment-parallel replay, a
// chunk corrupted mid-trace must be detected by a checksum at read
// time, dropped and recaptured — and the deterministic metrics of the
// damaged-then-recaptured run must be byte-identical to the clean
// run's, proving no segment worker ever consumed torn data.
func TestCesweepSegmentedCorruptChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	dir := t.TempDir()
	traces := filepath.Join(dir, "traces")
	clean := filepath.Join(dir, "clean.json")
	damaged := filepath.Join(dir, "damaged.json")
	mustRun(t, "cesweep", "-fig", "13", "-segments", "8", "-trace-dir", traces, "-metrics-det", clean)

	files, err := filepath.Glob(filepath.Join(traces, "*.cetrace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no trace files captured (err %v)", err)
	}
	sort.Strings(files)
	// Flip a byte inside the first chunk's packed records (the file
	// header is 40 bytes), invalidating its checksum but nothing else.
	f, err := os.OpenFile(files[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 40+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := mustRun(t, "cesweep", "-fig", "13", "-segments", "8", "-v", "-trace-dir", traces, "-metrics-det", damaged)
	if !strings.Contains(out, "1 corrupt traces dropped") {
		t.Errorf("corrupt chunk not counted:\n%s", out)
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(damaged)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("deterministic metrics diverge after mid-trace corruption:\n%s\nvs\n%s", a, b)
	}
}
