// Package directive parses the `//ce:` comment directives that carry the
// simulator's statically-enforced contracts:
//
//	//ce:deterministic          marks a package bit-deterministic (detlint)
//	//ce:keyed                  marks a struct whose Key() must cover every
//	                            exported field (keylint)
//	//ce:timing-neutral         exempts one struct field from Key coverage
//	//ce:hot                    marks a function allocation-free (hotlint)
//	//ce:nondet-ok <reason>     per-line detlint escape hatch
//	//ce:alloc-ok <reason>      per-line hotlint escape hatch
//
// Like //go: directives, a //ce: directive has no space after the
// slashes. The per-line escape hatches require a reason and apply to
// findings on their own line or, when the directive stands alone, on the
// line immediately below.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names.
const (
	Deterministic = "deterministic"
	Keyed         = "keyed"
	TimingNeutral = "timing-neutral"
	Hot           = "hot"
	NondetOK      = "nondet-ok"
	AllocOK       = "alloc-ok"
)

// A Directive is one parsed //ce: comment.
type Directive struct {
	Pos    token.Pos
	Name   string // "deterministic", "nondet-ok", ...
	Reason string // text after the name, trimmed
}

// parse extracts the directive from one comment, if any.
func parse(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//ce:")
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(text, " ")
	return Directive{Pos: c.Slash, Name: name, Reason: strings.TrimSpace(reason)}, true
}

// InGroup reports whether the comment group carries the named directive.
func InGroup(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if d, ok := parse(c); ok && d.Name == name {
			return true
		}
	}
	return false
}

// PackageMarked reports whether any file of the package carries the named
// package-scope directive (conventionally placed in the package doc
// comment; any comment in any file of the package counts, so multi-file
// packages need the marker only once).
func PackageMarked(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, g := range f.Comments {
			if InGroup(g, name) {
				return true
			}
		}
	}
	return false
}

// FuncMarked reports whether the function's doc comment carries the
// named directive.
func FuncMarked(fd *ast.FuncDecl, name string) bool {
	return InGroup(fd.Doc, name)
}

// Index is a per-file line-indexed view of one directive name, used for
// the per-line escape hatches.
type Index struct {
	fset *token.FileSet
	name string
	// byLine maps a line number to the directive covering it. A directive
	// covers its own line; a directive on a line by itself (no code before
	// it) also covers the next line.
	byLine map[int]Directive
	// malformed holds directives of this name with an empty reason.
	malformed []Directive
}

// NewIndex builds the per-line index of the named escape-hatch directive
// for one file. lineHasCode reports, per line, whether any non-comment
// token starts there; standalone directives extend their cover one line
// down.
func NewIndex(fset *token.FileSet, f *ast.File, name string) *Index {
	idx := &Index{fset: fset, name: name, byLine: make(map[int]Directive)}
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := parse(c)
			if !ok || d.Name != name {
				continue
			}
			if d.Reason == "" {
				idx.malformed = append(idx.malformed, d)
				continue
			}
			line := fset.Position(d.Pos).Line
			idx.byLine[line] = d
			if !codeLines[line] {
				idx.byLine[line+1] = d
			}
		}
	}
	return idx
}

// Covering returns the directive covering pos, if any.
func (idx *Index) Covering(pos token.Pos) (Directive, bool) {
	d, ok := idx.byLine[idx.fset.Position(pos).Line]
	return d, ok
}

// Malformed returns the directives of the indexed name that are missing
// their required reason.
func (idx *Index) Malformed() []Directive { return idx.malformed }
