// Package dep provides callees whose contract-relevant behavior —
// allocation, clock reads, blocking I/O, raw environment errors — is
// visible to importing packages only through analyzer facts. The badmod
// root package reaches every one of them across the package boundary,
// so a driver that fails to thread facts between passes misses all four
// seeded violations.
package dep

import (
	"os"
	"time"
)

// Grow allocates: hot callers must not reach it.
func Grow(n int) []int {
	return make([]int, n)
}

// Stamp reads the wall clock: deterministic callers must not reach it.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Save blocks on file I/O: callers must not hold a mutex across it.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Load returns raw environment errors for callers to classify.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}
