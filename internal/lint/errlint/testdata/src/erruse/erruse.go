// Package erruse sits on the classification boundary and calls into
// the unmarked errdep library: raw environment errors crossing into it
// must be findings at the call-returning sites.
//
//ce:classify-errors
package erruse

import (
	"fmt"

	"errdep"
)

func badLoad(path string) ([]byte, error) {
	return errdep.Load(path) // want "call to errdep.Load may return an unclassified environment error \\(Load: os.ReadFile\\)"
}

func badProbe(path string) error {
	return errdep.Probe(path) // want "call to errdep.Probe may return an unclassified environment error \\(Probe → Load: os.ReadFile\\)"
}

func badVia(path string) error {
	_, err := errdep.Load(path)
	return err // want "call to errdep.Load may return an unclassified environment error \\(Load: os.ReadFile\\)"
}

// --- classified and clean paths: no findings ---

func okClassified(path string) error {
	_, err := errdep.Load(path)
	if err != nil {
		return errdep.Classify(err)
	}
	return nil
}

func okSentinelWrap(path string) error {
	if err := errdep.Probe(path); err != nil {
		return fmt.Errorf("probe: %w: %w", errdep.ErrDisk, err)
	}
	return nil
}

func okPure(b []byte) int {
	return errdep.Size(b)
}

func okHatched(path string) error {
	return errdep.Probe(path) //ce:err-ok metrics probe, result is only logged
}
