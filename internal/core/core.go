// Package core implements the paper's primary contribution and its design
// space: the dependence-based instruction scheduler of Section 5 (chains of
// dependent instructions steered into in-order FIFOs), the conventional
// central issue window it is compared against, and the Section 5.6
// alternatives (window-per-cluster dispatch steering, execution-driven
// steering, random steering).
//
// A Scheduler owns the buffering between dispatch and issue and decides
// candidate order; the timing pipeline (package pipeline) owns operand
// readiness, functional units and ports, and calls back into the scheduler
// each cycle to select instructions.
//
// Everything here is bit-for-bit deterministic: the "random" steering and
// selection policies draw from fixed-seed LCG streams, never the host.
//
//ce:deterministic
package core

import (
	"repro/internal/emu"
	"repro/internal/isa"
)

// Uop is one in-flight instruction. The scheduler reads the identity and
// dependence fields; the timing fields are owned by the pipeline.
type Uop struct {
	// Seq is the global program-order sequence number.
	Seq uint64
	// Rec is the dynamic instruction (with resolved outcome) being timed.
	Rec emu.Record
	// Class caches isa.ClassOf(Rec.Inst.Op).
	Class isa.Class

	// PhysSrcs and PhysDest are the renamed operands (rename.None if
	// absent). OldDest is freed when the uop commits.
	PhysSrcs []int16
	PhysDest int16
	OldDest  int16

	// Cluster is the execution cluster, assigned at dispatch for
	// dispatch-driven steering or left as -1 for execution-driven
	// steering (the pipeline assigns it at issue).
	Cluster int
	// FIFO is the index of the FIFO holding the uop, or -1.
	FIFO int

	// Timing state, owned by the pipeline.
	FetchCycle    int64
	DispatchCycle int64
	IssueCycle    int64
	CompleteCycle int64
	Issued        bool
	Completed     bool
	// Mispredicted marks a conditional branch whose predicted direction
	// was wrong; fetch stalls (or speculates down the wrong path) until
	// it resolves.
	Mispredicted bool
	// Speculative marks a wrong-path instruction fetched past an
	// unresolved misprediction; it is squashed at resolution and never
	// commits.
	Speculative bool
	// UsedInterClusterBypass marks that at least one operand arrived over
	// an inter-cluster bypass path (Figure 17, bottom).
	UsedInterClusterBypass bool

	// Event-driven wakeup bookkeeping (see wakeboard.go), written by the
	// pipeline at dispatch and maintained by the scheduler: WakePending
	// counts sources whose producer has not issued yet, WakeMask marks
	// their indices in PhysSrcs, and WakeCycle is a lower bound on the
	// first cycle every operand could be consumable in some cluster.
	WakePending int8
	WakeMask    uint8
	WakeCycle   int64
}

// Scheduler buffers renamed instructions until they issue.
//
// The pipeline calls Dispatch in program order; false means a structural
// stall (window full, no free FIFO, FIFO full) and the pipeline retries
// next cycle. Each cycle the pipeline calls Select with the current cycle
// and a tryIssue callback; the scheduler offers candidates in
// selection-priority order (the paper's position/age-based policy) and
// removes a candidate when tryIssue accepts it. tryIssue is only called
// for uops the scheduler is prepared to issue, and a true return means
// the uop has issued.
//
// Wakeup and NextWake support the event-driven issue loop: the pipeline
// reports each issued producer via Wakeup, and NextWake lets it skip
// cycles on which Select provably cannot offer a candidate.
type Scheduler interface {
	Name() string
	// Clusters reports how many execution clusters the scheduler feeds.
	Clusters() int
	Dispatch(u *Uop) bool
	Select(now int64, tryIssue func(u *Uop) bool)
	// Wakeup notes that the producer of physical register p has issued
	// and its result becomes consumable — in the nearest cluster — at
	// readyCycle. The pipeline calls it once per issued uop with a
	// destination, before that uop's consumers can issue.
	Wakeup(p int16, readyCycle int64)
	// NextWake returns a lower bound on the next cycle Select may offer a
	// candidate: WakeNow when a candidate is already awake, the earliest
	// pending wake cycle otherwise, and NeverWake when empty.
	NextWake() int64
	// Squash removes every buffered uop with Seq > afterSeq (wrong-path
	// instructions being flushed at branch resolution).
	Squash(afterSeq uint64)
	// Len reports current occupancy.
	Len() int
	// Capacity reports total buffering capacity.
	Capacity() int
}

// CentralWindow is the conventional flexible issue window: any entry whose
// operands are ready may issue, selected oldest first. With AssignAtIssue
// it models the Section 5.6.1 organization: a single window feeding
// multiple clusters, with the cluster chosen when execution begins.
type CentralWindow struct {
	size          int
	clusters      int
	assignAtIssue bool
	randomSelect  bool
	rng           int32
	occupancy     int

	// board drives event-driven wakeup for the age-ordered selection
	// policies. Random selection must visit every entry each cycle anyway
	// (its rng stream advances per buffered entry), so it keeps the
	// entries scan.
	board   wakeBoard
	entries []*Uop
}

// NewCentralWindow builds a single-cluster window of the given size; every
// instruction is assigned to cluster 0 at dispatch.
func NewCentralWindow(size int) *CentralWindow {
	return &CentralWindow{size: size, clusters: 1}
}

// NewExecSteeredWindow builds the Section 5.6.1 organization: one central
// window of the given size feeding `clusters` clusters, with cluster
// assignment made by the pipeline at issue time (execution-driven
// steering).
func NewExecSteeredWindow(size, clusters int) *CentralWindow {
	return &CentralWindow{size: size, clusters: clusters, assignAtIssue: true}
}

// NewRandomSelectWindow builds a single-cluster window whose selection
// policy is *random* rather than position-based. Butler & Patt (cited in
// Section 4.3) found overall performance largely independent of the
// selection policy; this scheduler exists to ablate that claim.
func NewRandomSelectWindow(size int) *CentralWindow {
	return &CentralWindow{size: size, clusters: 1, randomSelect: true, rng: 424243}
}

// Name implements Scheduler.
func (w *CentralWindow) Name() string {
	switch {
	case w.assignAtIssue:
		return "central-window-exec-steer"
	case w.randomSelect:
		return "central-window-random-select"
	default:
		return "central-window"
	}
}

// Clusters implements Scheduler.
func (w *CentralWindow) Clusters() int { return w.clusters }

// Len implements Scheduler.
func (w *CentralWindow) Len() int { return w.occupancy }

// Capacity implements Scheduler.
func (w *CentralWindow) Capacity() int { return w.size }

// Dispatch implements Scheduler.
//
//ce:hot
func (w *CentralWindow) Dispatch(u *Uop) bool {
	if w.occupancy >= w.size {
		return false
	}
	if w.assignAtIssue {
		u.Cluster = -1
	} else {
		u.Cluster = 0
	}
	if w.randomSelect {
		w.entries = append(w.entries, u)
	} else {
		w.board.add(u)
	}
	w.occupancy++
	return true
}

// Select implements Scheduler. Awake candidates are offered in dispatch
// (age) order, which is the paper's position-based selection policy; with
// random selection every entry is a candidate and the order is shuffled
// deterministically each cycle.
//
//ce:hot
func (w *CentralWindow) Select(now int64, tryIssue func(u *Uop) bool) {
	if !w.randomSelect {
		w.board.promote(now)
		ready := w.board.ready
		kept := ready[:0]
		for _, u := range ready {
			if tryIssue(u) {
				w.occupancy--
			} else {
				kept = append(kept, u)
			}
		}
		for i := len(kept); i < len(ready); i++ {
			ready[i] = nil
		}
		w.board.ready = kept
		return
	}
	order := make([]*Uop, len(w.entries)) //ce:alloc-ok random-select ablation only; keeps the published rng stream
	copy(order, w.entries)
	for i := len(order) - 1; i > 0; i-- {
		w.rng = w.rng*1103515245 + 12345
		j := int(uint32(w.rng)>>16) % (i + 1)
		order[i], order[j] = order[j], order[i]
	}
	var issued map[*Uop]bool
	for _, u := range order {
		if tryIssue(u) {
			if issued == nil {
				issued = make(map[*Uop]bool) //ce:alloc-ok random-select ablation only, nil until first issue
			}
			issued[u] = true
		}
	}
	if len(issued) == 0 {
		return
	}
	kept := w.entries[:0]
	for _, u := range w.entries {
		if !issued[u] {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(w.entries); i++ {
		w.entries[i] = nil
	}
	w.entries = kept
	w.occupancy = len(kept)
}

// Wakeup implements Scheduler.
//
//ce:hot
func (w *CentralWindow) Wakeup(p int16, readyCycle int64) {
	if !w.randomSelect {
		w.board.wakeup(p, readyCycle)
	}
}

// NextWake implements Scheduler. Random selection reshuffles — and
// advances its rng stream — every cycle the window is occupied, so its
// Select must run every such cycle.
//
//ce:hot
func (w *CentralWindow) NextWake() int64 {
	if w.randomSelect {
		if w.occupancy > 0 {
			return WakeNow
		}
		return NeverWake
	}
	return w.board.nextWake()
}

// Squash implements Scheduler.
func (w *CentralWindow) Squash(afterSeq uint64) {
	if !w.randomSelect {
		w.occupancy -= w.board.squash(afterSeq)
		return
	}
	kept := w.entries[:0]
	for _, u := range w.entries {
		if u.Seq <= afterSeq {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(w.entries); i++ {
		w.entries[i] = nil
	}
	w.entries = kept
	w.occupancy = len(kept)
}

// SteerPolicy selects how a FIFOBank routes instructions.
type SteerPolicy int

const (
	// SteerDependence is the Section 5.1 heuristic: follow the FIFO of an
	// outstanding source operand when the source is the FIFO tail,
	// otherwise take a new FIFO.
	SteerDependence SteerPolicy = iota
	// SteerRandom routes to a random cluster's buffering, falling back to
	// the other cluster if full (Section 5.6.3).
	SteerRandom
)

// fifo is one in-order queue.
type fifo struct {
	cluster int
	q       []*Uop
}

// FIFOBank is the dependence-based scheduler of Section 5 and its
// windowed variants. Instructions are steered into per-cluster FIFOs at
// dispatch. With AnySlot false only FIFO heads are issue candidates (the
// paper's FIFO microarchitecture); with AnySlot true every entry is a
// candidate and the FIFO structure only shapes dispatch (the "window
// modeled as FIFOs" dispatch heuristic of Section 5.6.2).
type FIFOBank struct {
	name     string
	fifos    []fifo
	depth    int
	clusters int
	anySlot  bool
	policy   SteerPolicy

	// freeFIFOs holds indices of empty FIFOs, one pool per cluster; cur
	// is the cluster whose pool currently serves new-FIFO requests
	// (Section 5.5's modified free-list policy).
	freeFIFOs [][]int
	cur       int

	// producer maps a physical register to the uop that writes it while
	// that uop still occupies a FIFO (the SRC_FIFO table of Section 5,
	// kept in terms of physical registers since steering runs after
	// rename). Indexed directly by register number and grown on demand,
	// like wakeBoard.waiters: steering consults it for every source of
	// every dispatched instruction, so it must be a plain load, not a map
	// probe.
	producer []*Uop

	occupancy int
	rng       int32

	// board drives event-driven wakeup; headSnap is the per-FIFO head
	// snapshot Select gates candidates on (reused across cycles).
	board    wakeBoard
	headSnap []*Uop

	// StallNoFIFO counts dispatch stalls due to steering (full target
	// FIFO and no free FIFO).
	StallNoFIFO uint64
}

// FIFOBankConfig sizes a FIFOBank.
type FIFOBankConfig struct {
	Name            string //ce:timing-neutral
	Clusters        int
	FIFOsPerCluster int
	Depth           int
	AnySlot         bool
	Policy          SteerPolicy
}

// NewFIFOBank builds the scheduler. The paper's configurations:
//
//   - Figure 13 dependence-based: 1 cluster × 8 FIFOs × 8 deep, heads only.
//   - Figure 15 clustered: 2 clusters × 4 FIFOs × 8 deep, heads only.
//   - Figure 17 "two windows, dispatch steering": 2 clusters × 8 FIFOs × 4
//     deep, AnySlot (each 32-entry window treated as 8 conceptual FIFOs).
//   - Figure 17 "two windows, random steering": 2 clusters × 1 FIFO × 32
//     deep, AnySlot, SteerRandom.
func NewFIFOBank(cfg FIFOBankConfig) *FIFOBank {
	b := &FIFOBank{
		name:     cfg.Name,
		depth:    cfg.Depth,
		clusters: cfg.Clusters,
		anySlot:  cfg.AnySlot,
		policy:   cfg.Policy,
		rng:      10007,
	}
	b.freeFIFOs = make([][]int, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < cfg.FIFOsPerCluster; i++ {
			b.fifos = append(b.fifos, fifo{cluster: c})
			b.freeFIFOs[c] = append(b.freeFIFOs[c], len(b.fifos)-1)
		}
	}
	return b
}

// Name implements Scheduler.
func (b *FIFOBank) Name() string { return b.name }

// Clusters implements Scheduler.
func (b *FIFOBank) Clusters() int { return b.clusters }

// Len implements Scheduler.
func (b *FIFOBank) Len() int { return b.occupancy }

// Capacity implements Scheduler.
func (b *FIFOBank) Capacity() int { return len(b.fifos) * b.depth }

// Dispatch implements Scheduler.
//
//ce:hot
func (b *FIFOBank) Dispatch(u *Uop) bool {
	var fi int
	switch b.policy {
	case SteerRandom:
		fi = b.steerRandom()
	default:
		fi = b.steerDependence(u)
	}
	if fi < 0 {
		b.StallNoFIFO++
		return false
	}
	f := &b.fifos[fi]
	u.FIFO = fi
	u.Cluster = f.cluster
	f.q = append(f.q, u)
	b.occupancy++
	if u.PhysDest >= 0 {
		for int(u.PhysDest) >= len(b.producer) {
			b.producer = append(b.producer, nil)
		}
		b.producer[u.PhysDest] = u
	}
	b.board.add(u)
	return true
}

// steerDependence implements the Section 5.1 heuristic, generalized over
// clusters with the Section 5.5 free-list policy.
//
//ce:hot
func (b *FIFOBank) steerDependence(u *Uop) int {
	// Try each outstanding source operand in order: if its producer is
	// the tail of its FIFO and the FIFO has room, follow it.
	for _, ps := range u.PhysSrcs {
		if ps < 0 || int(ps) >= len(b.producer) {
			continue
		}
		p := b.producer[ps]
		if p == nil {
			continue // operand already computed or producer issued
		}
		f := &b.fifos[p.FIFO]
		if len(f.q) > 0 && f.q[len(f.q)-1] == p && len(f.q) < b.depth {
			return p.FIFO
		}
	}
	// Fall back to a new (empty) FIFO from the free pools.
	return b.allocFIFO()
}

// allocFIFO takes an empty FIFO, preferring the current cluster's pool and
// switching the current cluster when its pool is exhausted (Section 5.5).
//
//ce:hot
func (b *FIFOBank) allocFIFO() int {
	for try := 0; try < b.clusters; try++ {
		pool := &b.freeFIFOs[b.cur]
		if len(*pool) > 0 {
			fi := (*pool)[len(*pool)-1]
			*pool = (*pool)[:len(*pool)-1]
			return fi
		}
		b.cur = (b.cur + 1) % b.clusters
	}
	return -1
}

// steerRandom picks a random cluster and falls back to the other(s) when
// its buffering is full (Section 5.6.3).
//
//ce:hot
func (b *FIFOBank) steerRandom() int {
	b.rng = b.rng*1103515245 + 12345
	start := int(uint32(b.rng)>>16) % b.clusters
	for try := 0; try < b.clusters; try++ {
		c := (start + try) % b.clusters
		for i := range b.fifos {
			if b.fifos[i].cluster == c && len(b.fifos[i].q) < b.depth {
				return i
			}
		}
	}
	return -1
}

// Select implements Scheduler: candidates are FIFO heads (or, with
// AnySlot, all entries), offered oldest first. The awake candidates come
// from the wake board in Seq order; without AnySlot they are additionally
// gated on a start-of-cycle head snapshot, so an entry exposed by its
// head issuing this same cycle must wait for the next — exactly the
// head-only semantics of the full-scan implementation.
//
//ce:hot
func (b *FIFOBank) Select(now int64, tryIssue func(u *Uop) bool) {
	b.board.promote(now)
	if len(b.board.ready) == 0 {
		return
	}
	if !b.anySlot {
		for len(b.headSnap) < len(b.fifos) {
			b.headSnap = append(b.headSnap, nil)
		}
		// Snapshot heads before any candidate issues, but only for the
		// FIFOs that actually hold a ready candidate — the gate below never
		// consults any other entry, and ready is usually much smaller than
		// the bank. Duplicate refreshes are harmless (all pre-issue).
		for _, u := range b.board.ready {
			if q := b.fifos[u.FIFO].q; len(q) > 0 {
				b.headSnap[u.FIFO] = q[0]
			} else {
				b.headSnap[u.FIFO] = nil
			}
		}
	}
	ready := b.board.ready
	kept := ready[:0]
	for _, u := range ready {
		if !b.anySlot && b.headSnap[u.FIFO] != u {
			kept = append(kept, u)
			continue
		}
		if tryIssue(u) {
			b.remove(u)
		} else {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(ready); i++ {
		ready[i] = nil
	}
	b.board.ready = kept
}

// Wakeup implements Scheduler.
//
//ce:hot
func (b *FIFOBank) Wakeup(p int16, readyCycle int64) {
	b.board.wakeup(p, readyCycle)
}

// NextWake implements Scheduler. The bound ignores head-only gating (a
// non-head uop may be awake but unofferable); that only makes the bound
// conservative, never late, because a blocked awake uop implies an awake
// head in the same FIFO with an equal-or-earlier wake cycle is still
// unissued — and Select runs while any candidate is awake.
//
//ce:hot
func (b *FIFOBank) NextWake() int64 {
	return b.board.nextWake()
}

// remove deletes an issued uop from its FIFO and recycles empty FIFOs.
//
//ce:hot
func (b *FIFOBank) remove(u *Uop) {
	f := &b.fifos[u.FIFO]
	for i, x := range f.q {
		if x == u {
			copy(f.q[i:], f.q[i+1:])
			f.q[len(f.q)-1] = nil
			f.q = f.q[:len(f.q)-1]
			break
		}
	}
	b.occupancy--
	if u.PhysDest >= 0 && b.producer[u.PhysDest] == u {
		b.producer[u.PhysDest] = nil
	}
	if len(f.q) == 0 && b.policy != SteerRandom {
		b.freeFIFOs[f.cluster] = append(b.freeFIFOs[f.cluster], u.FIFO)
	}
}

// Squash implements Scheduler: wrong-path uops are the youngest, so they
// sit at FIFO tails; they are popped, the producer table entries they
// installed removed, and emptied FIFOs recycled.
func (b *FIFOBank) Squash(afterSeq uint64) {
	for i := range b.fifos {
		f := &b.fifos[i]
		had := len(f.q)
		for len(f.q) > 0 {
			tail := f.q[len(f.q)-1]
			if tail.Seq <= afterSeq {
				break
			}
			f.q[len(f.q)-1] = nil
			f.q = f.q[:len(f.q)-1]
			b.occupancy--
			if tail.PhysDest >= 0 && b.producer[tail.PhysDest] == tail {
				b.producer[tail.PhysDest] = nil
			}
			tail.FIFO = -1
		}
		if had > 0 && len(f.q) == 0 && b.policy != SteerRandom {
			b.freeFIFOs[f.cluster] = append(b.freeFIFOs[f.cluster], i)
		}
	}
	b.board.squash(afterSeq)
}

// FIFOOccupancy returns the per-FIFO queue lengths (diagnostics and the
// steering example program).
func (b *FIFOBank) FIFOOccupancy() []int {
	out := make([]int, len(b.fifos))
	for i := range b.fifos {
		out[i] = len(b.fifos[i].q)
	}
	return out
}

// FIFOContents returns the sequence numbers queued in each FIFO, head
// first (diagnostics and the steering example program).
func (b *FIFOBank) FIFOContents() [][]uint64 {
	out := make([][]uint64, len(b.fifos))
	for i := range b.fifos {
		for _, u := range b.fifos[i].q {
			out[i] = append(out[i], u.Seq)
		}
	}
	return out
}
