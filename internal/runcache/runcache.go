// Package runcache memoizes simulation results. The timing simulator is
// deterministic — a (configuration fingerprint, workload) pair always
// produces the same Stats — so the paper's evaluation matrix, which
// revisits the same machines across figures, ablations and the frontier,
// only ever needs to simulate each distinct pair once per process.
//
// The cache is concurrency-safe and single-flight: when two goroutines
// request the same key, one computes and the other waits for (and
// shares) the result. With a directory configured, results also persist
// as JSON, so repeated sweep invocations skip simulation entirely. The
// in-memory tier can be bounded (SetLimit) into a warm LRU over the disk
// tier, and SetShared extends single-flight across processes sharing one
// directory via a lock-file lease protocol (internal/lease), which is
// what lets N cesweepd daemons on one store deduplicate work.
//
//ce:classify-errors
package runcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/canonjson"
	"repro/internal/errclass"
	"repro/internal/lease"
	"repro/internal/pipeline"
)

// Stats counts cache outcomes. Hits + Coalesced + DiskHits is the number
// of simulator runs the cache avoided; Misses is the number it actually
// performed.
type Stats struct {
	// Hits are lookups served from a completed in-memory entry.
	Hits uint64 `json:"hits"`
	// Coalesced are lookups that joined an in-flight computation of the
	// same key (single-flight duplicates).
	Coalesced uint64 `json:"coalesced"`
	// DiskHits are lookups served from the persistence directory
	// (including results another process computed under a lease while we
	// waited; see LeaseWaits).
	DiskHits uint64 `json:"disk_hits"`
	// Misses are lookups that ran the simulator.
	Misses uint64 `json:"misses"`
	// Uncacheable are runs bypassing the cache because their
	// configuration has no fingerprint (opaque factory closures).
	Uncacheable uint64 `json:"uncacheable"`
	// LeaseWaits are lookups that found another process holding the
	// key's lease and obtained the result by waiting for it to appear on
	// disk — cross-process coalescing. Each is also counted in DiskHits.
	LeaseWaits uint64 `json:"lease_waits,omitempty"`
	// Evictions are completed entries dropped from the bounded in-memory
	// tier; with a directory configured they remain recallable from disk.
	Evictions uint64 `json:"evictions,omitempty"`
}

// Lookups returns the total number of cache consultations.
func (s Stats) Lookups() uint64 {
	return s.Hits + s.Coalesced + s.DiskHits + s.Misses
}

// Saved returns the number of simulator runs the cache avoided.
func (s Stats) Saved() uint64 {
	return s.Hits + s.Coalesced + s.DiskHits
}

type entry struct {
	key  string
	done chan struct{}
	st   pipeline.Stats
	err  error
	// elem is the entry's node in the warm-LRU list while the entry is
	// completed and resident; nil otherwise. Guarded by Cache.mu.
	elem *list.Element
}

// Cache is a content-addressed memo of simulation results.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	// lru orders completed resident entries, most recently used first.
	// In-flight entries are not listed (they cannot be evicted).
	lru   *list.List
	limit int
	dir   string
	// shared enables the cross-process lease protocol on the directory.
	shared    bool
	leaseTTL  time.Duration
	leasePoll time.Duration
	stats     Stats
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{
		entries:   make(map[string]*entry),
		lru:       list.New(),
		leaseTTL:  lease.DefaultTTL,
		leasePoll: 20 * time.Millisecond,
	}
}

// SetDir enables on-disk persistence under dir (created if missing).
// An empty dir disables persistence.
//
// Results memoized before SetDir are not lost to the disk tier: every
// completed successful entry is backfilled to the new directory, the
// same reconciliation the engine's trace pool performs on SetTraceDir.
// (Before this, a daemon that warmed its cache and then gained a store
// would serve those results from memory forever while the directory —
// and every other process sharing it — silently missed them.)
// In-flight computations race the change: they persist to the directory
// they started under, and the pool forgets them so their next consumer
// recomputes — and persists — under the new directory.
func (c *Cache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return errclass.Transient(fmt.Errorf("runcache: %w", err))
		}
	}
	c.mu.Lock()
	if dir == c.dir {
		c.mu.Unlock()
		return nil
	}
	c.dir = dir
	var flush []*entry
	for k, e := range c.entries {
		select {
		case <-e.done:
			if e.err != nil {
				continue
			}
			flush = append(flush, e)
		default:
			c.forgetLocked(k, e)
		}
	}
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	for _, e := range flush {
		c.saveDisk(dir, e.key, e.st)
	}
	return nil
}

// SetShared toggles the cross-process lease protocol (default off).
// With sharing on and a directory configured, a miss acquires the key's
// lock-file lease before simulating; processes that lose the race wait
// for the winner's result to appear on disk instead of duplicating the
// simulation. Crashed holders are recovered by staleness takeover
// (lease.DefaultTTL).
func (c *Cache) SetShared(on bool) {
	c.mu.Lock()
	c.shared = on
	c.mu.Unlock()
}

// SetLimit bounds the in-memory tier to at most n completed entries,
// evicting least-recently-used entries beyond it (n <= 0 means
// unbounded, the default). With a directory configured the memory tier
// becomes a warm LRU over disk: evicted results reload as DiskHits.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.evictLocked()
	c.mu.Unlock()
}

// forgetLocked removes e from the map (and LRU, if resident) if it is
// still the entry registered for key.
func (c *Cache) forgetLocked(key string, e *entry) {
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
	}
}

// evictLocked enforces the LRU bound.
func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for c.lru.Len() > c.limit {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.stats.Evictions++
	}
}

// complete publishes e's result to its waiters and makes it resident in
// the warm tier (unless a SetDir reconciliation already forgot it).
func (c *Cache) complete(e *entry, st pipeline.Stats, err error) {
	e.st, e.err = st, err
	close(e.done)
	c.mu.Lock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
}

// abandon publishes err to e's waiters and removes the entry so a later
// lookup retries the computation — the path for transient failures and
// panics, which must not be memoized forever.
func (c *Cache) abandon(e *entry, err error) {
	e.err = err
	close(e.done)
	c.mu.Lock()
	c.forgetLocked(e.key, e)
	c.mu.Unlock()
}

// ErrTransient marks an error as environmental rather than
// deterministic; see Transient and IsTransient. It aliases
// errclass.ErrTransient so every subsystem that touches the store
// shares one classification vocabulary.
var ErrTransient = errclass.ErrTransient

// Transient wraps err so IsTransient reports true: the caller is
// asserting the failure came from the environment (I/O, resources), not
// from the deterministic computation itself.
//
//ce:classifier
func Transient(err error) error {
	return errclass.Transient(err)
}

// IsTransient reports whether err describes an environmental failure —
// one a retry may not reproduce — rather than a deterministic property
// of the computation. Operating-system errors (a full disk during trace
// capture, a vanished directory, EMFILE) are transient; everything else
// — simulator validation errors, runaway-guard trips — is deterministic:
// the same inputs will fail the same way every time, so memoizing the
// error is both safe and desirable.
func IsTransient(err error) bool {
	return errclass.IsTransient(err)
}

// Do returns the memoized result for key, computing it at most once per
// process — and, with SetShared, at most once across every process
// sharing the directory. hit reports whether the result was served
// without invoking compute (including joining another goroutine's or
// process's in-flight computation).
//
// Deterministic errors are memoized: a deterministic simulator fails the
// same way every time, and callers must see the failure rather than a
// zero Stats. Transient errors (IsTransient) are delivered to the
// current waiters but not memoized, so a later lookup retries — in a
// long-lived daemon a momentary ENOSPC must not brick a key until
// restart. Corrupt-artifact errors (errclass.IsCorrupt) are treated the
// same way: a torn trace or cache file is deleted and rebuilt by the
// layer that found it, so the failure is repairable and memoizing it
// would pin a recovered key to a stale error. If compute panics, the
// panic propagates to its caller after the entry is abandoned with an
// error, so coalesced waiters unblock (with that error) instead of
// deadlocking forever.
func (c *Cache) Do(key string, compute func() (pipeline.Stats, error)) (st pipeline.Stats, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
		default:
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.done
		return e.st, true, e.err
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	dir, shared := c.dir, c.shared
	c.mu.Unlock()

	if dir != "" {
		if st, ok := c.loadDisk(dir, key); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.mu.Unlock()
			c.complete(e, st, nil)
			return st, true, nil
		}
		if shared {
			held, st, ok, waited := c.acquireOrAwait(dir, key)
			if ok {
				c.mu.Lock()
				c.stats.DiskHits++
				if waited {
					c.stats.LeaseWaits++
				}
				c.mu.Unlock()
				c.complete(e, st, nil)
				return st, true, nil
			}
			if held != nil {
				defer held.Release()
			}
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	panicked := true
	defer func() {
		if panicked {
			// compute is unwinding. Record the failure and unblock every
			// coalesced waiter before the panic continues to the caller;
			// the entry is dropped so the key stays retryable.
			c.abandon(e, fmt.Errorf("runcache: compute for key %.64q panicked", key))
		}
	}()
	st, err = compute()
	panicked = false
	if err != nil && (IsTransient(err) || errclass.IsCorrupt(err)) {
		c.abandon(e, err)
		return pipeline.Stats{}, false, err
	}
	if err == nil && dir != "" {
		// Persistence is best-effort: a read-only directory degrades to
		// in-memory memoization rather than failing the sweep. The write
		// lands before the lease (if any) is released, so a waiting
		// process's next poll finds it.
		c.saveDisk(dir, key, st)
	}
	c.complete(e, st, err)
	return st, false, err
}

// acquireOrAwait is the cross-process arm of Do. It either acquires the
// key's lease (returning held != nil, ok == false: the caller computes)
// or waits out another process's computation and returns its result from
// disk (ok == true). If the directory cannot host lock files at all it
// returns (nil, _, false, _): the caller computes leaseless, trading
// possible duplicated work for availability.
func (c *Cache) acquireOrAwait(dir, key string) (held *lease.Lease, st pipeline.Stats, ok, waited bool) {
	c.mu.Lock()
	ttl, poll := c.leaseTTL, c.leasePoll
	c.mu.Unlock()
	lockPath := diskPath(dir, key) + ".lock"
	for {
		if l, acquired := lease.TryAcquire(lockPath, ttl); acquired {
			// The previous holder may have finished between our last disk
			// probe and this acquisition; re-check before simulating.
			if st, found := c.loadDisk(dir, key); found {
				l.Release()
				return nil, st, true, waited
			}
			return l, pipeline.Stats{}, false, waited
		}
		if _, err := os.Stat(lockPath); err != nil {
			// Acquisition failed yet no lock exists: the directory is
			// unwritable (read-only store, permission change). Degrade to
			// computing without cross-process exclusion.
			return nil, pipeline.Stats{}, false, waited
		}
		waited = true
		time.Sleep(poll)
		if st, found := c.loadDisk(dir, key); found {
			return nil, st, true, waited
		}
	}
}

// RecordUncacheable notes one run that bypassed the cache.
func (c *Cache) RecordUncacheable() {
	c.mu.Lock()
	c.stats.Uncacheable++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memoized keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops all in-memory entries and counters (the persistence
// directory is untouched).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.lru = list.New()
	c.stats = Stats{}
	c.mu.Unlock()
}

// diskEntry is the persisted form: the full key is stored alongside the
// result so hash collisions are detected and files are debuggable.
type diskEntry struct {
	Key   string         `json:"key"`
	Stats pipeline.Stats `json:"stats"`
}

func diskPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])[:32]+".json")
}

func (c *Cache) loadDisk(dir, key string) (pipeline.Stats, bool) {
	path := diskPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return pipeline.Stats{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil || de.Key != key {
		// The file is unusable — corrupt JSON from a crashed writer or a
		// hash collision with a different key. Delete it so the slot can
		// be rewritten; otherwise it would shadow this key forever.
		_ = os.Remove(path)
		return pipeline.Stats{}, false
	}
	return de.Stats, true
}

func (c *Cache) saveDisk(dir, key string, st pipeline.Stats) {
	// Canonical bytes: two processes caching the same result write
	// byte-identical files, so racing renames are harmless.
	data, err := canonjson.Marshal(diskEntry{Key: key, Stats: st})
	if err != nil {
		return
	}
	// Write to a uniquely named temp file and rename into place: a fixed
	// temp name would let two processes sharing the directory interleave
	// writes and rename a torn file over the entry.
	tmp, err := os.CreateTemp(dir, "entry-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), diskPath(dir, key)); err != nil {
		_ = os.Remove(tmp.Name())
	}
}
