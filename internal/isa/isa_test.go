package isa

import (
	"strings"
	"testing"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Zero, "$zero"}, {T0, "$t0"}, {SP, "$sp"}, {RA, "$ra"}, {FP, "$fp"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.r, got, c.want)
		}
	}
	if got := Reg(200).String(); got != "$r200" {
		t.Errorf("out-of-range reg = %q", got)
	}
}

func TestRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		name := Reg(i).String()[1:]
		r, ok := RegByName(name)
		if !ok || r != Reg(i) {
			t.Errorf("RegByName(%q) = %v, %v", name, r, ok)
		}
	}
	if r, ok := RegByName("8"); !ok || r != T0 {
		t.Errorf("numeric RegByName(8) = %v, %v", r, ok)
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("99"); ok {
		t.Error("RegByName(99) succeeded")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for op := Invalid + 1; op < numOps; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			t.Errorf("op %d has no name", op)
			continue
		}
		back, ok := OpByName(name)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", name, back, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName(frobnicate) succeeded")
	}
	if got := Invalid.String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("Invalid.String() = %q", got)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Add, ClassALU}, {Slli, ClassALU}, {Lui, ClassALU},
		{Mul, ClassMul}, {Div, ClassDiv}, {Rem, ClassDiv},
		{Lw, ClassLoad}, {Lbu, ClassLoad},
		{Sw, ClassStore}, {Sb, ClassStore},
		{Beq, ClassBranch}, {Bgtz, ClassBranch},
		{J, ClassJump}, {Jalr, ClassJump},
		{Out, ClassSystem}, {Halt, ClassSystem},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
	if ClassALU.String() != "alu" || ClassStore.String() != "store" {
		t.Error("class names wrong")
	}
	if got := Class(99).String(); !strings.HasPrefix(got, "class(") {
		t.Errorf("unknown class = %q", got)
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: Add, Rd: T0, Rs: T1, Rt: T2}, []Reg{T1, T2}},
		{Inst{Op: Add, Rd: T0, Rs: Zero, Rt: T2}, []Reg{T2}}, // $zero dropped
		{Inst{Op: Addi, Rd: T0, Rs: T1}, []Reg{T1}},
		{Inst{Op: Lw, Rd: T0, Rs: SP}, []Reg{SP}},
		{Inst{Op: Sw, Rt: T3, Rs: SP}, []Reg{SP, T3}},
		{Inst{Op: Beq, Rs: T0, Rt: T1}, []Reg{T0, T1}},
		{Inst{Op: Bgtz, Rs: T0}, []Reg{T0}},
		{Inst{Op: Jr, Rs: RA}, []Reg{RA}},
		{Inst{Op: Out, Rs: V0}, []Reg{V0}},
		{Inst{Op: Lui, Rd: T0}, nil},
		{Inst{Op: J}, nil},
		{Inst{Op: Halt}, nil},
	}
	for _, c := range cases {
		got := c.in.Sources()
		if len(got) != len(c.want) {
			t.Errorf("%v.Sources() = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%v.Sources() = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDest(t *testing.T) {
	if d, ok := (Inst{Op: Add, Rd: T0}).Dest(); !ok || d != T0 {
		t.Errorf("add dest = %v, %v", d, ok)
	}
	if _, ok := (Inst{Op: Add, Rd: Zero}).Dest(); ok {
		t.Error("write to $zero reported as a destination")
	}
	if d, ok := (Inst{Op: Jal}).Dest(); !ok || d != RA {
		t.Errorf("jal dest = %v, %v", d, ok)
	}
	for _, in := range []Inst{{Op: Sw}, {Op: Beq}, {Op: J}, {Op: Jr}, {Op: Halt}, {Op: Out}} {
		if _, ok := in.Dest(); ok {
			t.Errorf("%v has a destination", in)
		}
	}
}

func TestControlPredicates(t *testing.T) {
	if !(Inst{Op: Beq}).IsControl() || !(Inst{Op: Beq}).IsConditional() {
		t.Error("beq predicates wrong")
	}
	if !(Inst{Op: J}).IsControl() || (Inst{Op: J}).IsConditional() {
		t.Error("j predicates wrong")
	}
	if (Inst{Op: Add}).IsControl() {
		t.Error("add is not control")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Add, Rd: T0, Rs: T1, Rt: T2}, "add $t0, $t1, $t2"},
		{Inst{Op: Addi, Rd: T0, Rs: T1, Imm: -5}, "addi $t0, $t1, -5"},
		{Inst{Op: Lui, Rd: T4, Imm: 7}, "lui $t4, 7"},
		{Inst{Op: Lw, Rd: T0, Rs: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Inst{Op: Sw, Rt: T0, Rs: SP, Imm: -4}, "sw $t0, -4($sp)"},
		{Inst{Op: Beq, Rs: T0, Rt: T1, Imm: 12}, "beq $t0, $t1, 12"},
		{Inst{Op: Bgtz, Rs: T0, Imm: 3}, "bgtz $t0, 3"},
		{Inst{Op: J, Imm: 9}, "j 9"},
		{Inst{Op: Jr, Rs: RA}, "jr $ra"},
		{Inst{Op: Jalr, Rs: T0}, "jalr $t0"},
		{Inst{Op: Out, Rs: V0}, "out $v0"},
		{Inst{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
