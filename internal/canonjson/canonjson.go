// Package canonjson renders values as canonical JSON: object keys are
// sorted, indentation is a single tab per level, and the output ends in
// one newline. Every artifact the simulator persists or emits as JSON —
// run-cache entries, -metrics-json dumps, benchmark results — goes
// through this encoder, so byte-identical inputs produce byte-identical
// files regardless of struct field order or map iteration order, and
// artifacts can be diffed and content-addressed.
//
// Numbers are preserved verbatim from encoding/json's output (no float64
// round-trip), so uint64 counters survive untouched.
package canonjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Marshal encodes v canonically. v is first encoded by encoding/json
// (honoring struct tags and MarshalJSON implementations), then
// re-rendered with sorted object keys and tab indentation.
func Marshal(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("canonjson: reparse: %w", err)
	}
	var buf bytes.Buffer
	if err := render(&buf, doc, 0); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

func render(buf *bytes.Buffer, v any, depth int) error {
	switch v := v.(type) {
	case map[string]any:
		if len(v) == 0 {
			buf.WriteString("{}")
			return nil
		}
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteString("{\n")
		for i, k := range keys {
			indent(buf, depth+1)
			if err := renderString(buf, k); err != nil {
				return err
			}
			buf.WriteString(": ")
			if err := render(buf, v[k], depth+1); err != nil {
				return err
			}
			if i < len(keys)-1 {
				buf.WriteByte(',')
			}
			buf.WriteByte('\n')
		}
		indent(buf, depth)
		buf.WriteByte('}')
	case []any:
		if len(v) == 0 {
			buf.WriteString("[]")
			return nil
		}
		buf.WriteString("[\n")
		for i, e := range v {
			indent(buf, depth+1)
			if err := render(buf, e, depth+1); err != nil {
				return err
			}
			if i < len(v)-1 {
				buf.WriteByte(',')
			}
			buf.WriteByte('\n')
		}
		indent(buf, depth)
		buf.WriteByte(']')
	case string:
		return renderString(buf, v)
	case json.Number:
		buf.WriteString(v.String())
	case bool:
		if v {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case nil:
		buf.WriteString("null")
	default:
		return fmt.Errorf("canonjson: unexpected reparsed type %T", v)
	}
	return nil
}

// renderString delegates escaping to encoding/json so canonical strings
// match what json.Marshal would emit.
func renderString(buf *bytes.Buffer, s string) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	buf.Write(b)
	return nil
}

func indent(buf *bytes.Buffer, depth int) {
	for i := 0; i < depth; i++ {
		buf.WriteByte('\t')
	}
}
