package keylint_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/keylint"
)

func TestKeylint(t *testing.T) {
	diags := analysistest.Run(t, analysistest.TestData(t), keylint.Analyzer, "keyed", "keyedvia")
	// The unkeyed-field findings must carry the annotate-the-field
	// suggested fix when the field is declared in the analyzed package.
	var withFix, withoutFix int
	for _, d := range diags["keyed"] {
		if d.Category != "unkeyed-field" {
			continue
		}
		if len(d.SuggestedFixes) > 0 {
			fix := d.SuggestedFixes[0]
			if len(fix.TextEdits) != 1 || !strings.Contains(string(fix.TextEdits[0].NewText), "//ce:timing-neutral") {
				t.Errorf("unexpected suggested fix for %s: %+v", d.Message, fix)
			}
			withFix++
		} else {
			withoutFix++
		}
	}
	// Trace and FIFO.Label are in-package (fixable); Ext.B is foreign.
	if withFix != 2 || withoutFix != 1 {
		t.Errorf("suggested-fix split = %d fixable / %d not, want 2 / 1", withFix, withoutFix)
	}
}
