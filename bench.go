package ce

import (
	"fmt"
	"os"

	"repro/internal/canonjson"
	"repro/internal/verify"
)

// PipelineBenchResult is one configuration's simulator-performance
// measurement: how fast the timing simulator itself runs (host metrics),
// not how well the simulated machine performs. Serialized into
// BENCH_pipeline.json by `cesweep -bench-json` so the performance
// trajectory is tracked across changes.
type PipelineBenchResult struct {
	Config         string  `json:"config"`
	Workload       string  `json:"workload"`
	Cycles         int64   `json:"cycles"`
	Committed      uint64  `json:"committed"`
	WallSeconds    float64 `json:"wall_seconds"`
	MCyclesPerSec  float64 `json:"mcycles_per_sec"`
	HostAllocs     uint64  `json:"host_allocs"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// PipelineBenchConfigs returns the differential-verification panel with
// its instruments (invariant checker, timeline recording) stripped, so
// the production fast path — event-driven wakeup plus idle-cycle
// skipping — is what gets measured. One configuration per mechanism the
// simulator implements.
func PipelineBenchConfigs() []Config {
	cfgs := verify.Panel()
	for i := range cfgs {
		cfgs[i].CheckInvariants = false
		cfgs[i].RecordTimeline = false
	}
	return cfgs
}

// PipelineBench times every panel configuration on one workload with a
// fresh simulator per run (no run cache), returning per-configuration
// host-performance results.
func PipelineBench(workload string) ([]PipelineBenchResult, error) {
	out := make([]PipelineBenchResult, 0, 7)
	for _, cfg := range PipelineBenchConfigs() {
		st, err := Run(cfg, workload)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s: %w", cfg.Name, workload, err)
		}
		r := PipelineBenchResult{
			Config:      cfg.Name,
			Workload:    workload,
			Cycles:      st.Cycles,
			Committed:   st.Committed,
			WallSeconds: st.HostWallSeconds,
			HostAllocs:  st.HostAllocs,
		}
		if st.HostWallSeconds > 0 {
			r.MCyclesPerSec = float64(st.Cycles) / st.HostWallSeconds / 1e6
		}
		if st.Cycles > 0 {
			r.AllocsPerCycle = float64(st.HostAllocs) / float64(st.Cycles)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON runs PipelineBench and writes the results to path as
// canonical indented JSON (the BENCH_pipeline.json emitter behind
// `cesweep -bench-json`).
func WriteBenchJSON(path, workload string) ([]PipelineBenchResult, error) {
	res, err := PipelineBench(workload)
	if err != nil {
		return nil, err
	}
	data, err := canonjson.Marshal(res)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return res, nil
}
