package delaymodel

import (
	"fmt"

	"repro/internal/vlsi"
)

// The paper measures complexity as delay, noting that it "can be variously
// quantified in terms such as number of transistors, die area, and power
// dissipated". This file adds a first-order die-area view of the same
// structures (in λ², so it is technology-independent): it shows that the
// dependence-based machine's issue buffering is also smaller, because FIFO
// entries are plain RAM while window entries carry comparators for every
// result tag.

// Cell geometry constants, in λ.
const (
	// A CAM window entry: per-result-tag matchlines set the height (the
	// same tagCellPitch·IW used by the wakeup delay model); the width
	// covers two operand tags of 8 bits plus match/ready logic.
	camCellWidth = 8*2*10 + 120

	// A FIFO entry is a RAM latch row: fixed height, same payload width,
	// no comparators.
	fifoCellHeight = 16
	fifoCellWidth  = 8*2*10 + 40

	// A reservation-table bit cell.
	resBitCell = 12 * 10
)

// IssueArea is the die area of one machine's issue buffering, in λ².
type IssueArea struct {
	// Window is the CAM issue window's area.
	Window float64
	// FIFOs is the dependence-based FIFO bank's storage area.
	FIFOs float64
	// ReservationTable is the dependence-based wakeup table's area.
	ReservationTable float64
	// SelectTree approximates the arbiter tree's area (shared shape:
	// one arbiter cell per 4 entries at each level ≈ entries/3 cells).
	SelectTree float64
}

// DependenceTotal returns the dependence-based machine's issue-logic area
// (FIFO storage + reservation table + a heads-only select tree).
func (a IssueArea) DependenceTotal() float64 {
	return a.FIFOs + a.ReservationTable
}

// WindowTotal returns the window machine's issue-logic area.
func (a IssueArea) WindowTotal() float64 { return a.Window + a.SelectTree }

// IssueAreaEstimate computes first-order issue-buffer areas for a machine
// with the given issue width, total window/FIFO entries and physical
// register count. Areas are in λ² and thus technology-independent; scale
// by λ² to obtain µm².
func IssueAreaEstimate(t vlsi.Technology, issueWidth, entries, physRegs int) (IssueArea, error) {
	c, err := calibFor(t)
	if err != nil {
		return IssueArea{}, err
	}
	if issueWidth < 1 || entries < 1 || physRegs < 1 {
		return IssueArea{}, fmt.Errorf("delaymodel: invalid area query %d-way/%d entries/%d regs", issueWidth, entries, physRegs)
	}
	iw := float64(issueWidth)
	e := float64(entries)
	camHeight := c.wakeup.tagCellPitch * iw
	arbCells := e / 3 // 4-ary tree: n/4 + n/16 + ... ≈ n/3
	return IssueArea{
		Window:           e * camHeight * camCellWidth,
		FIFOs:            e * fifoCellHeight * fifoCellWidth,
		ReservationTable: float64(physRegs) * resBitCell,
		SelectTree:       arbCells * 60 * 80,
	}, nil
}
