// Package isa defines the 32-bit RISC instruction set used by the
// simulator: a load/store architecture in the style of MIPS (the ISA the
// paper's SimpleScalar-based evaluation used), with 32 integer registers
// and a small operation repertoire sufficient for the SPEC95-like
// benchmark kernels in package prog.
//
// Instructions are represented structurally rather than as encoded words:
// the timing models in this repository depend on dataflow (which registers
// are read and written, whether memory is touched, whether control
// transfers), not on binary encodings.
package isa

import "fmt"

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Reg is an architectural register number, 0–31. Register 0 is hardwired
// to zero, as in MIPS.
type Reg uint8

// Conventional MIPS register names.
const (
	Zero Reg = iota
	AT
	V0
	V1
	A0
	A1
	A2
	A3
	T0
	T1
	T2
	T3
	T4
	T5
	T6
	T7
	S0
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	T8
	T9
	K0
	K1
	GP
	SP
	FP
	RA
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional name, e.g. "$t0".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// RegByName resolves a register name (without the leading '$'); both
// conventional names ("t0") and numeric names ("8") are accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	var num int
	if _, err := fmt.Sscanf(name, "%d", &num); err == nil && num >= 0 && num < NumRegs {
		return Reg(num), true
	}
	return 0, false
}

// Op is an operation code.
type Op uint8

// Operations. Three-register ALU ops read Rs and Rt and write Rd;
// immediate ALU ops read Rs and write Rd. Loads read Rs (base) and write
// Rd; stores read Rs (base) and Rt (data). Branches read Rs (and Rt for
// the two-register comparisons) and carry an instruction-index target in
// Imm. Jal/Jalr write RA.
const (
	Invalid Op = iota

	// ALU, register forms.
	Add
	Sub
	And
	Or
	Xor
	Nor
	Sllv
	Srlv
	Srav
	Slt
	Sltu
	Mul
	Div
	Rem

	// ALU, immediate forms.
	Addi
	Andi
	Ori
	Xori
	Slli
	Srli
	Srai
	Slti
	Sltiu
	Lui

	// Memory.
	Lw
	Lb
	Lbu
	Sw
	Sb

	// Conditional branches (target = instruction index in Imm).
	Beq
	Bne
	Blt
	Bge
	Bltz
	Bgez
	Blez
	Bgtz

	// Unconditional control.
	J
	Jal
	Jr
	Jalr

	// Environment.
	Out  // append the value of Rs to the program's output
	Halt // stop execution

	numOps
)

var opNames = map[Op]string{
	Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor", Nor: "nor",
	Sllv: "sllv", Srlv: "srlv", Srav: "srav", Slt: "slt", Sltu: "sltu",
	Mul: "mul", Div: "div", Rem: "rem",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Slli: "slli", Srli: "srli", Srai: "srai", Slti: "slti", Sltiu: "sltiu",
	Lui: "lui",
	Lw:  "lw", Lb: "lb", Lbu: "lbu", Sw: "sw", Sb: "sb",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Bltz: "bltz", Bgez: "bgez", Blez: "blez", Bgtz: "bgtz",
	J: "j", Jal: "jal", Jr: "jr", Jalr: "jalr",
	Out: "out", Halt: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// opsByName inverts opNames once so mnemonic lookup is a deterministic
// O(1) map read rather than a scan in map iteration order.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for o, n := range opNames {
		m[n] = o
	}
	return m
}()

// OpByName resolves a mnemonic to its operation.
func OpByName(name string) (Op, bool) {
	o, ok := opsByName[name]
	return o, ok
}

// Class groups operations by the functional-unit/pipeline behaviour the
// timing simulator cares about.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional
	ClassJump   // unconditional
	ClassSystem // Out, Halt
)

var classNames = [...]string{"alu", "mul", "div", "load", "store", "branch", "jump", "system"}

// String returns a short class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the operation's class.
func ClassOf(o Op) Class {
	switch o {
	case Mul:
		return ClassMul
	case Div, Rem:
		return ClassDiv
	case Lw, Lb, Lbu:
		return ClassLoad
	case Sw, Sb:
		return ClassStore
	case Beq, Bne, Blt, Bge, Bltz, Bgez, Blez, Bgtz:
		return ClassBranch
	case J, Jal, Jr, Jalr:
		return ClassJump
	case Out, Halt:
		return ClassSystem
	default:
		return ClassALU
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Op Op
	Rd Reg // destination
	Rs Reg // first source
	Rt Reg // second source
	// Imm is the immediate operand: an arithmetic constant, a load/store
	// byte offset, or a branch/jump target expressed as an instruction
	// index into the program's text segment.
	Imm int32
}

// SourceRegs returns the architectural registers the instruction reads
// (register 0 and unused fields excluded) without allocating: the first n
// entries of srcs are valid. An instruction reads at most two registers.
func (in Inst) SourceRegs() (srcs [2]Reg, n int) {
	add := func(r Reg) {
		if r != Zero {
			srcs[n] = r
			n++
		}
	}
	switch in.Op {
	case Add, Sub, And, Or, Xor, Nor, Sllv, Srlv, Srav, Slt, Sltu, Mul, Div, Rem:
		add(in.Rs)
		add(in.Rt)
	case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu, Lw, Lb, Lbu:
		add(in.Rs)
	case Sw, Sb:
		add(in.Rs)
		add(in.Rt)
	case Beq, Bne, Blt, Bge:
		add(in.Rs)
		add(in.Rt)
	case Bltz, Bgez, Blez, Bgtz, Jr, Jalr, Out:
		add(in.Rs)
	case Lui, J, Jal, Halt:
		// No register sources.
	}
	return srcs, n
}

// Sources returns the architectural registers the instruction reads, as a
// freshly allocated slice; hot paths use SourceRegs.
func (in Inst) Sources() []Reg {
	srcs, n := in.SourceRegs()
	if n == 0 {
		return nil
	}
	out := make([]Reg, n)
	copy(out, srcs[:n])
	return out
}

// Dest returns the architectural register the instruction writes and
// whether it writes one at all (writes to register 0 are discarded).
func (in Inst) Dest() (Reg, bool) {
	var d Reg
	switch in.Op {
	case Add, Sub, And, Or, Xor, Nor, Sllv, Srlv, Srav, Slt, Sltu, Mul, Div, Rem,
		Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu, Lui, Lw, Lb, Lbu:
		d = in.Rd
	case Jal, Jalr:
		d = RA
	default:
		return 0, false
	}
	if d == Zero {
		return 0, false
	}
	return d, true
}

// IsControl reports whether the instruction can redirect fetch.
func (in Inst) IsControl() bool {
	c := ClassOf(in.Op)
	return c == ClassBranch || c == ClassJump
}

// IsConditional reports whether the instruction is a conditional branch.
func (in Inst) IsConditional() bool { return ClassOf(in.Op) == ClassBranch }

// String disassembles the instruction.
func (in Inst) String() string {
	switch ClassOf(in.Op) {
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rt, in.Imm, in.Rs)
	case ClassBranch:
		switch in.Op {
		case Beq, Bne, Blt, Bge:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs, in.Rt, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %d", in.Op, in.Rs, in.Imm)
		}
	case ClassJump:
		switch in.Op {
		case Jr:
			return fmt.Sprintf("jr %s", in.Rs)
		case Jalr:
			return fmt.Sprintf("jalr %s", in.Rs)
		default:
			return fmt.Sprintf("%s %d", in.Op, in.Imm)
		}
	case ClassSystem:
		if in.Op == Out {
			return fmt.Sprintf("out %s", in.Rs)
		}
		return "halt"
	default:
		switch in.Op {
		case Lui:
			return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
		case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
		}
	}
}

// Program is an assembled unit: a text segment of instructions plus an
// initialized data image placed at DataBase.
type Program struct {
	Name    string
	Text    []Inst
	Data    []byte
	Symbols map[string]uint32 // label → instruction index or data address
}

// DataBase is the byte address at which Program.Data is loaded.
const DataBase uint32 = 0x10000

// StackTop is the conventional initial stack pointer (stacks grow down).
const StackTop uint32 = 0x7FFFF0
