// Cesweep regenerates the paper's simulation results: Figure 13 (IPC of
// the dependence-based machine versus the baseline window machine),
// Figure 15 (the clustered 2×4-way machine), Figure 17 (the clustered
// design space, IPC and inter-cluster bypass frequency), the Section 5.5
// speedup estimate, and the window-size trade-off extension.
//
// Usage:
//
//	cesweep -fig 13        # one figure
//	cesweep -speedup       # Section 5.5 estimate
//	cesweep -tradeoff      # window-size trade-off (extension)
//	cesweep -all           # everything
//	cesweep -all -csv      # CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
)

var (
	figure    = flag.Int("fig", 0, "figure to regenerate: 13, 15 or 17")
	speedup   = flag.Bool("speedup", false, "print the Section 5.5 speedup estimate")
	tradeoff  = flag.Bool("tradeoff", false, "print the window-size trade-off (extension)")
	ablations = flag.Bool("ablations", false, "run the steering/geometry/latency/predictor/atomicity ablations (extensions)")
	micro     = flag.Bool("micro", false, "run the microbenchmark characterization (extension)")
	frontier  = flag.Bool("frontier", false, "rank design points by IPC x estimated clock (extension)")
	profiles  = flag.Bool("profiles", false, "print dynamic workload profiles (extension)")
	all       = flag.Bool("all", false, "regenerate every simulation result")
	csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cesweep:", err)
		os.Exit(1)
	}
}

func emit(t *report.Table) {
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func run() error {
	ran := false
	if *figure == 13 || *all {
		ran = true
		cmp, err := ce.Figure13()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 13: IPC of the dependence-based microarchitecture"))
	}
	if *figure == 15 || *all {
		ran = true
		cmp, err := ce.Figure15()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 15: IPC of the clustered dependence-based microarchitecture"))
	}
	if *figure == 17 || *all {
		ran = true
		cmp, err := ce.Figure17()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 17 (top): IPC of clustered microarchitectures"))
		emit(cmp.BypassTable("Figure 17 (bottom): inter-cluster bypass frequency"))
	}
	if *speedup || *all {
		ran = true
		sws, mean, err := ce.SpeedupEstimate()
		if err != nil {
			return err
		}
		emit(ce.SpeedupTable(sws, mean))
	}
	if *tradeoff || *all {
		ran = true
		tbl, err := ce.WindowTradeoff([]int{16, 32, 64, 128})
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *ablations || *all {
		ran = true
		for _, fn := range []func() (*report.Table, error){
			ce.SteeringAblation, ce.FIFOGeometry, ce.LatencySweep, ce.PredictorAblation,
			ce.AtomicityAblation, ce.FetchRealismAblation, ce.SelectionPolicyAblation,
			ce.StoreForwardingAblation, ce.SteeringDepthAblation, ce.WrongPathAblation,
		} {
			tbl, err := fn()
			if err != nil {
				return err
			}
			emit(tbl)
		}
	}
	if *frontier || *all {
		ran = true
		pts, err := ce.Frontier()
		if err != nil {
			return err
		}
		emit(ce.FrontierTable(pts))
	}
	if *profiles || *all {
		ran = true
		tbl, err := ce.WorkloadProfiles()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *micro || *all {
		ran = true
		tbl, err := ce.MicrobenchCharacterization()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected: pass -fig N, -speedup, -tradeoff, -ablations, -micro or -all")
	}
	return nil
}
