package profile

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustProfile(t *testing.T, src string) *Report {
	t.Helper()
	p, err := asm.Assemble("prof.s", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Profile(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSerialChainProfile(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < 100; i++ {
		b.WriteString("\taddi $t0, $t0, 1\n")
	}
	b.WriteString("\thalt\n")
	r := mustProfile(t, b.String())
	// A pure serial chain: dataflow ILP ≈ 1, every dependence distance 1.
	if r.DataflowILP > 1.1 {
		t.Errorf("serial chain dataflow ILP = %.2f, want ≈1", r.DataflowILP)
	}
	if got := r.DepDistance.Percentile(50); got != 1 {
		t.Errorf("P50 dependence distance = %d, want 1", got)
	}
	if r.WindowCoverage(4) < 0.99 {
		t.Errorf("window-4 coverage = %.2f, want ≈1", r.WindowCoverage(4))
	}
}

func TestParallelStreamsProfile(t *testing.T) {
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"}
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < 400; i++ {
		b.WriteString("\taddi " + regs[i%8] + ", " + regs[i%8] + ", 1\n")
	}
	b.WriteString("\thalt\n")
	r := mustProfile(t, b.String())
	// Eight independent chains: dataflow ILP ≈ 8, distances ≈ 8.
	if r.DataflowILP < 6 {
		t.Errorf("8-stream dataflow ILP = %.2f, want ≈8", r.DataflowILP)
	}
	if got := r.DepDistance.Percentile(50); got != 8 {
		t.Errorf("P50 dependence distance = %d, want 8", got)
	}
}

func TestMemoryDependenceTracked(t *testing.T) {
	// A chain through memory: store then dependent load must serialize
	// the dataflow.
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < 50; i++ {
		b.WriteString("\tlw $t0, 0x40000($zero)\n")
		b.WriteString("\taddi $t0, $t0, 1\n")
		b.WriteString("\tsw $t0, 0x40000($zero)\n")
	}
	b.WriteString("\thalt\n")
	r := mustProfile(t, b.String())
	if r.DataflowILP > 1.5 {
		t.Errorf("memory chain dataflow ILP = %.2f, want ≈1", r.DataflowILP)
	}
	if r.FootprintBytes != 4 {
		t.Errorf("footprint = %d bytes, want 4 (one word)", r.FootprintBytes)
	}
}

func TestBranchStats(t *testing.T) {
	r := mustProfile(t, `
		.text
		li   $s0, 100
loop:	addi $s0, $s0, -1
		bgtz $s0, loop
		halt
	`)
	if r.CondBranches != 100 {
		t.Errorf("branches = %d, want 100", r.CondBranches)
	}
	if r.TakenRate < 0.98 {
		t.Errorf("taken rate = %.2f, want ≈0.99", r.TakenRate)
	}
	// Loop body is two instructions: basic blocks of length 2.
	if mean := r.BasicBlock.Mean(); mean < 1.8 || mean > 2.5 {
		t.Errorf("basic block mean = %.2f, want ≈2", mean)
	}
}

func TestMixSumsToOne(t *testing.T) {
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Profile(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range r.Mix {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mix sums to %.4f", sum)
	}
	if r.Mix[isa.ClassLoad] == 0 || r.Mix[isa.ClassBranch] == 0 {
		t.Error("compress profile missing loads or branches")
	}
	if !strings.Contains(r.String(), "dataflow-limit ILP") {
		t.Error("String() missing dataflow section")
	}
}

func TestWorkloadProfilesShapeExpectations(t *testing.T) {
	// The kernels must show their namesakes' qualitative shapes.
	get := func(name string) *Report {
		w, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		r, err := Profile(p, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// micro.chase is a single serial pointer chain: its dataflow-limit
	// ILP must be far below the blocked-transform ijpeg kernel. (Note li
	// is NOT a good lower bound here: its 60 lists are mutually
	// independent, so an infinite machine could chase them all at once —
	// dataflow-limit ILP measures inherent parallelism, not what a
	// finite window achieves.)
	chase := get("micro.chase")
	ijpeg := get("ijpeg")
	if chase.DataflowILP >= ijpeg.DataflowILP/2 {
		t.Errorf("micro.chase dataflow ILP (%.1f) not well below ijpeg (%.1f)",
			chase.DataflowILP, ijpeg.DataflowILP)
	}
	// gcc is branch-dense.
	gcc := get("gcc")
	if gcc.BranchEvery > 12 {
		t.Errorf("gcc branch distance = %.1f, want dense (≤12)", gcc.BranchEvery)
	}
	// A 64-entry window captures the large majority of dependences in
	// every paper workload — the premise behind Table 3's window size.
	for _, name := range prog.Names() {
		r := get(name)
		if cov := r.WindowCoverage(64); cov < 0.70 {
			t.Errorf("%s: window-64 dependence coverage %.0f%%, want ≥70%%", name, cov*100)
		}
	}
}

func TestProfileErrors(t *testing.T) {
	p, err := asm.Assemble("inf.s", ".text\nloop: j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(p, 1000); err == nil {
		t.Error("infinite loop not bounded")
	}
}
