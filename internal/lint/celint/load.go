package celint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// loadedPackage is one package ready for analysis.
type loadedPackage struct {
	importPath string
	fset       *token.FileSet
	files      []*ast.File
	types      *types.Package
	info       *types.Info
	// factOnly marks a module dependency outside the requested patterns:
	// it is analyzed so its facts reach the requested packages, but its
	// own diagnostics are discarded (`celint ./internal/server` should
	// not also lint runcache — only see through it).
	factOnly bool
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// canonical collapses a test-variant import path ("pkg [pkg.test]") to
// the plain package path, which names the node in the analysis DAG: the
// test variant's objects carry the same types.Func.FullName keys, so
// one fact pass per canonical path covers both.
func canonical(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// loadPackages resolves patterns through `go list -deps -test -export`,
// picks one package per canonical import path (the in-package test
// variant when one exists, so _test.go files are analyzed too), and
// returns them topologically sorted, dependencies first — the order a
// bottom-up fact pass needs. Module packages pulled in only as
// dependencies are included as factOnly.
func loadPackages(patterns []string) ([]*loadedPackage, error) {
	args := append([]string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Imports,Export,Standard,DepOnly,ForTest,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, p)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick one listPackage per canonical path: the in-package test variant
	// supersedes the plain package (it type-checks the same declarations
	// plus the _test.go files). External _test packages keep their own
	// canonical node; only the synthesized .test mains are skipped (their
	// sole GoFile is generated).
	chosen := make(map[string]*listPackage)
	requested := make(map[string]bool) // canonical paths matched by the patterns
	for _, p := range listed {
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		c := canonical(p.ImportPath)
		if prev, ok := chosen[c]; !ok || (prev.ForTest == "" && p.ForTest != "") {
			chosen[c] = p
		}
		if !p.DepOnly {
			requested[c] = true
		}
	}

	// Topological sort over the canonical module DAG (Kahn's algorithm
	// with sorted tie-breaks, so the order — and therefore the output —
	// is deterministic). Collapsing test variants can create a cycle (two
	// packages whose _test.go files import each other, like asm ↔ emu),
	// so the sort runs over strongly-connected components: only the
	// members of an actual cycle lose dependencies-first ordering (their
	// back-edge facts), never the packages downstream of them.
	order := topoSort(chosen)

	var pkgs []*loadedPackage
	for _, c := range order {
		p := chosen[c]
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "celint: skipping %s: cgo package\n", p.ImportPath)
			continue
		}
		lp, err := typecheck(p, exports)
		if err != nil {
			return nil, err
		}
		lp.factOnly = !requested[c]
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// topoSort orders the canonical paths dependencies-first. Cycles from
// test-variant collapsing are condensed into strongly-connected
// components first; the acyclic condensation is then Kahn-sorted with
// sorted tie-breaks, and members inside a component emerge in sorted
// order. A naive Kahn over the raw graph would strand every transitive
// dependent of a cycle in the "remainder", silently dropping fact flow
// for most of the module.
func topoSort(chosen map[string]*listPackage) []string {
	deps := make(map[string][]string) // canonical -> module deps (canonical)
	for c, p := range chosen {
		seen := make(map[string]bool)
		for _, imp := range p.Imports {
			if mapped, ok := p.ImportMap[imp]; ok {
				imp = mapped
			}
			d := canonical(imp)
			if d == c || chosen[d] == nil || seen[d] {
				continue
			}
			seen[d] = true
			deps[c] = append(deps[c], d)
		}
	}
	comp := condense(chosen, deps)

	// Kahn over the condensation, components keyed by their sorted-first
	// member for deterministic tie-breaking.
	compDeps := make(map[string]map[string]bool)  // component key -> dep component keys
	members := make(map[string][]string)          // component key -> sorted members
	keyOf := make(map[string]string, len(chosen)) // canonical -> component key
	for _, scc := range comp {
		sort.Strings(scc)
		key := scc[0]
		members[key] = scc
		for _, c := range scc {
			keyOf[c] = key
		}
	}
	for key := range members {
		compDeps[key] = make(map[string]bool)
	}
	for c, ds := range deps {
		for _, d := range ds {
			if keyOf[c] != keyOf[d] {
				compDeps[keyOf[c]][keyOf[d]] = true
			}
		}
	}
	indeg := make(map[string]int, len(members))
	dependents := make(map[string][]string)
	for key, ds := range compDeps {
		indeg[key] = len(ds)
		for d := range ds {
			dependents[d] = append(dependents[d], key)
		}
	}
	ready := make([]string, 0, len(members))
	for key, n := range indeg {
		if n == 0 {
			ready = append(ready, key)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		key := ready[0]
		ready = ready[1:]
		order = append(order, members[key]...)
		next := append([]string(nil), dependents[key]...)
		sort.Strings(next)
		for _, d := range next {
			if indeg[d]--; indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
		sort.Strings(ready)
	}
	return order
}

// condense returns the strongly-connected components of the canonical
// graph (Tarjan, iterative). Singleton components are the common case;
// anything larger is a test-collapse cycle.
func condense(chosen map[string]*listPackage, deps map[string][]string) [][]string {
	nodes := make([]string, 0, len(chosen))
	for c := range chosen {
		nodes = append(nodes, c)
	}
	sort.Strings(nodes)
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	type frame struct {
		node string
		di   int // next dep index to visit
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.node
			if f.di == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.di < len(deps[v]) {
				w := deps[v][f.di]
				f.di++
				if _, seen := index[w]; !seen {
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				comps = append(comps, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

// typecheck parses and type-checks one package from source, resolving
// imports through gc export data files.
func typecheck(p *listPackage, exports map[string]string) (*loadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// "pkg [pkg.test]" type-checks under its real import path.
	path := p.ImportPath
	if p.ForTest != "" {
		path = p.ForTest
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
	}
	return &loadedPackage{
		importPath: p.ImportPath,
		fset:       fset,
		files:      files,
		types:      tpkg,
		info:       info,
	}, nil
}
