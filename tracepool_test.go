package ce

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

// TestEngineTracePoolEquivalence pins the engine-level replay contract:
// a matrix run with the trace pool (default) and one with lockstep
// drive produce identical simulation results, each workload is captured
// exactly once however many configurations consume it, wrong-path
// configurations fall back to lockstep, and the capture cost is
// attributed to the pool rather than to any run.
func TestEngineTracePoolEquivalence(t *testing.T) {
	wp := BaselineConfig()
	wp.WrongPathExecution = true
	wp.Name += "+wrong-path"
	cfgs := []Config{BaselineConfig(), DependenceConfig(), wp}
	workloads := []string{"compress", "micro.branchy"}

	replayEng := NewEngine()
	lockEng := NewEngine()
	lockEng.SetTraceReplay(false)

	got, err := replayEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lockEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		for j := range workloads {
			a, b := got[i][j], want[i][j]
			if a.IssuedPerCycle.Total() != b.IssuedPerCycle.Total() ||
				a.IssuedPerCycle.Mean() != b.IssuedPerCycle.Mean() {
				t.Errorf("%s/%s: issue histograms diverge", cfgs[i].Name, workloads[j])
			}
			a.HostAllocs, b.HostAllocs = 0, 0
			a.HostWallSeconds, b.HostWallSeconds = 0, 0
			a.IssuedPerCycle, b.IssuedPerCycle = nil, nil
			if a != b {
				t.Errorf("%s/%s: replay-driven stats diverge from lockstep:\n  %+v\n  %+v",
					cfgs[i].Name, workloads[j], a, b)
			}
		}
	}

	ts := replayEng.TraceStats()
	if ts.Captures != len(workloads) || ts.DiskHits != 0 {
		t.Errorf("replay engine captured %d workloads (%d disk hits), want %d captures",
			ts.Captures, ts.DiskHits, len(workloads))
	}
	if ts.ReplayRuns != 4 || ts.LockstepRuns != 2 {
		t.Errorf("replay engine ran %d replay / %d lockstep sims, want 4 / 2 (wrong-path falls back)",
			ts.ReplayRuns, ts.LockstepRuns)
	}
	if ts.StepsReplayed == 0 || ts.StepsExecuted == 0 {
		t.Errorf("degenerate step balance: %+v", ts)
	}
	if ls := lockEng.TraceStats(); ls.Captures != 0 || ls.ReplayRuns != 0 || ls.LockstepRuns != 6 {
		t.Errorf("lockstep engine touched the trace pool: %+v", ls)
	}

	// Per-run metrics: fresh runs are marked by drive mode, and capture
	// time is reported separately from (not inside) the run's wall time.
	for _, m := range replayEng.Metrics() {
		if m.Cached {
			continue
		}
		wantReplay := m.Config != wp.Name
		if m.Replayed != wantReplay {
			t.Errorf("%s/%s: Replayed = %v, want %v", m.Config, m.Workload, m.Replayed, wantReplay)
		}
		if m.WallSeconds < 0 || m.CaptureSeconds < 0 {
			t.Errorf("%s/%s: negative attribution: wall %g capture %g",
				m.Config, m.Workload, m.WallSeconds, m.CaptureSeconds)
		}
	}
	for _, m := range lockEng.Metrics() {
		if !m.Cached && (m.Replayed || m.CaptureSeconds != 0) {
			t.Errorf("%s/%s: lockstep run carries replay attribution: %+v", m.Config, m.Workload, m)
		}
	}
}

// TestSetTraceDirFlushesPool is the regression test for SetTraceDir
// called after traces are already pooled: the earlier captures used to
// stay in-memory only (never persisted anywhere), so the directory
// silently missed exactly the workloads that ran first. A directory
// change now flushes every completed capture to the new directory.
func TestSetTraceDirFlushesPool(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng.TraceStats(); ts.Captures != 1 {
		t.Fatalf("expected 1 pooled capture, got %+v", ts)
	}

	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}

	// The pooled trace must now exist on disk under the new directory.
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadFile(dir, p); err != nil {
		t.Fatalf("pooled trace was not flushed to the new dir: %v", err)
	}

	// A fresh engine pointed at the same directory loads the flushed
	// trace instead of re-executing the workload.
	eng2 := NewEngine()
	if err := eng2.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng2.TraceStats(); ts.DiskHits != 1 || ts.Captures != 0 {
		t.Errorf("fresh engine did not load the flushed trace: %+v", ts)
	}

	// Setting the same directory again is a no-op (no error, pool kept).
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng.TraceStats(); ts.Captures != 1 {
		t.Errorf("pool was dropped on a no-op dir change: %+v", ts)
	}
}

// TestEngineStreamingCapture pins the bounded-memory capture contract:
// with a trace directory configured, capture streams straight to disk
// and the pooled trace reports its bytes on disk, not resident.
func TestEngineStreamingCapture(t *testing.T) {
	eng := NewEngine()
	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	ts := eng.TraceStats()
	if ts.Captures != 1 {
		t.Fatalf("expected 1 capture, got %+v", ts)
	}
	if ts.TraceDiskBytes == 0 || ts.TraceResidentBytes != 0 {
		t.Errorf("streamed capture footprint disk=%d resident=%d, want all bytes on disk",
			ts.TraceDiskBytes, ts.TraceResidentBytes)
	}
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trace.DiskPath(dir, p)); err != nil {
		t.Errorf("streamed capture missing from the trace dir: %v", err)
	}
}

// TestEngineCaptureFailureCounted pins the lockstep-fallback
// accounting: when the trace cannot be captured, the run still succeeds
// by lockstep execution, and the fallback is counted rather than
// silent.
func TestEngineCaptureFailureCounted(t *testing.T) {
	eng := NewEngine()
	dir := filepath.Join(t.TempDir(), "traces")
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	// Replace the trace directory with a regular file: ReadFile and the
	// streaming capture both fail with ENOTDIR, forcing the fallback.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	lock := NewEngine()
	lock.SetTraceReplay(false)
	want, err := lock.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Cycles != want[0][0].Cycles {
		t.Errorf("fallback run diverges: %d cycles vs %d", got[0][0].Cycles, want[0][0].Cycles)
	}
	ts := eng.TraceStats()
	if ts.CaptureFailures != 1 || ts.LockstepRuns != 1 || ts.ReplayRuns != 0 {
		t.Errorf("fallback not accounted: %+v", ts)
	}
	for _, m := range eng.Metrics() {
		if m.Replayed {
			t.Errorf("%s/%s marked replayed despite capture failure", m.Config, m.Workload)
		}
	}
}

// TestEngineCorruptTraceRecaptured pins the mid-replay corruption path:
// a trace whose on-disk chunk is flipped after capture fails its lazy
// checksum at the next load, is dropped and invalidated, and the run
// transparently recaptures and retries — correct results, one
// CorruptDropped count, two Captures. The segmented variant routes the
// replay through parallel segment workers, so the corrupt chunk is
// observed (and the retry coordinated) across concurrent readers —
// which the race detector checks for tearing.
func TestEngineCorruptTraceRecaptured(t *testing.T) {
	t.Run("monolithic", func(t *testing.T) { testCorruptTraceRecaptured(t, 0) })
	t.Run("segmented", func(t *testing.T) { testCorruptTraceRecaptured(t, 4) })
}

func testCorruptTraceRecaptured(t *testing.T, segments int) {
	eng := NewEngine()
	eng.SetSegments(segments)
	// Streaming replay re-reads (and re-verifies) chunks from disk on
	// every run, so it observes the corruption this test injects after
	// the first run. Gang replay would legitimately mask it: the chunk
	// was verified at its one decode and the resident slab stays good —
	// TestEngineGangCorruptTraceRecaptured covers the gang recovery path
	// with a cold cache instead.
	eng.SetGangReplay(false)
	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	path := trace.DiskPath(dir, p)
	// Flip one byte inside the first chunk's packed data (the header is
	// 40 bytes). The pooled trace reads through an open handle, so the
	// flip is visible to its next chunk load.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 40+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A different configuration misses the run cache and replays the now
	// rotten trace; the engine must drop it, recapture, and succeed.
	lock := NewEngine()
	lock.SetTraceReplay(false)
	want, err := lock.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Cycles != want[0][0].Cycles {
		t.Errorf("recaptured run diverges: %d cycles vs %d", got[0][0].Cycles, want[0][0].Cycles)
	}
	ts := eng.TraceStats()
	if ts.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1 (%+v)", ts.CorruptDropped, ts)
	}
	if ts.Captures != 2 {
		t.Errorf("Captures = %d, want 2 (original + recapture)", ts.Captures)
	}
	if ts.CaptureFailures != 0 {
		t.Errorf("corruption miscounted as capture failure: %+v", ts)
	}
	// The recaptured file is intact: a fresh engine loads it from disk.
	eng2 := NewEngine()
	if err := eng2.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng2.TraceStats(); ts.DiskHits != 1 {
		t.Errorf("recaptured trace not reloadable: %+v", ts)
	}
}

// TestEngineGangCorruptTraceRecaptured pins corrupt-chunk recovery on
// the gang path: a trace whose on-disk bytes rot before any slab is
// decoded fails its checksum during the gang's single decode, is
// dropped and invalidated, and the run recaptures and retries — same
// contract as streaming replay, detected once per chunk instead of once
// per config.
func TestEngineGangCorruptTraceRecaptured(t *testing.T) {
	for _, segments := range []int{0, 4} {
		seed := NewEngine()
		dir := t.TempDir()
		if err := seed.SetTraceDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, err := seed.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
			t.Fatal(err)
		}
		w, err := prog.ByName("micro.branchy")
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(trace.DiskPath(dir, p), os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xFF}, 40+64); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// A fresh engine loads the rotten file lazily; the gang's first
		// slab decode trips the checksum.
		eng := NewEngine()
		eng.SetSegments(segments)
		if err := eng.SetTraceDir(dir); err != nil {
			t.Fatal(err)
		}
		lock := NewEngine()
		lock.SetTraceReplay(false)
		want, err := lock.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
		if err != nil {
			t.Fatalf("segments=%d: %v", segments, err)
		}
		if got[0][0].Cycles != want[0][0].Cycles {
			t.Errorf("segments=%d: recaptured gang run diverges: %d cycles vs %d", segments, got[0][0].Cycles, want[0][0].Cycles)
		}
		ts := eng.TraceStats()
		if ts.CorruptDropped != 1 || ts.DiskHits != 1 || ts.Captures != 1 {
			t.Errorf("segments=%d: recovery accounting: CorruptDropped=%d DiskHits=%d Captures=%d, want 1/1/1",
				segments, ts.CorruptDropped, ts.DiskHits, ts.Captures)
		}
		if ts.GangRuns != 1 {
			t.Errorf("segments=%d: GangRuns = %d, want 1", segments, ts.GangRuns)
		}
	}
}

// TestEngineGangEquivalence pins the gang-replay contract at the engine
// level: a matrix run with gang replay (the default) and one with it
// disabled produce identical simulation results, the ganged engine
// counts its runs and slab sharing, and the decoded-record total drops
// below the per-config baseline's (#configs × trace length).
func TestEngineGangEquivalence(t *testing.T) {
	cfgs := []Config{BaselineConfig(), DependenceConfig(), FourWayConfig()}
	workloads := []string{"compress", "micro.branchy"}

	gangEng := NewEngine()
	streamEng := NewEngine()
	streamEng.SetGangReplay(false)

	got, err := gangEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := streamEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		for j := range workloads {
			a, b := got[i][j], want[i][j]
			if a.IssuedPerCycle.Total() != b.IssuedPerCycle.Total() ||
				a.IssuedPerCycle.Mean() != b.IssuedPerCycle.Mean() {
				t.Errorf("%s/%s: issue histograms diverge", cfgs[i].Name, workloads[j])
			}
			a.HostAllocs, b.HostAllocs = 0, 0
			a.HostWallSeconds, b.HostWallSeconds = 0, 0
			a.IssuedPerCycle, b.IssuedPerCycle = nil, nil
			if a != b {
				t.Errorf("%s/%s: ganged stats diverge from streaming replay:\n  %+v\n  %+v",
					cfgs[i].Name, workloads[j], a, b)
			}
		}
	}

	gts := gangEng.TraceStats()
	if gts.GangRuns != len(cfgs)*len(workloads) {
		t.Errorf("GangRuns = %d, want %d", gts.GangRuns, len(cfgs)*len(workloads))
	}
	if gts.SlabDecodes == 0 {
		t.Error("ganged sweep decoded no slabs")
	}
	if gts.SlabHits == 0 {
		t.Error("ganged sweep shared no slabs (every acquisition decoded)")
	}
	sts := streamEng.TraceStats()
	if sts.GangRuns != 0 || sts.SlabDecodes != 0 {
		t.Errorf("gang-disabled engine touched the slab cache: %+v", sts)
	}
	if gts.RecordsDecoded == 0 || sts.RecordsDecoded == 0 {
		t.Fatalf("decoded-record accounting is dark: gang %d, stream %d", gts.RecordsDecoded, sts.RecordsDecoded)
	}
	if gts.RecordsDecoded*uint64(len(cfgs)) > sts.RecordsDecoded {
		t.Errorf("gang decoded %d records vs %d streamed — expected at least a %d× reduction",
			gts.RecordsDecoded, sts.RecordsDecoded, len(cfgs))
	}
	for _, m := range gangEng.Metrics() {
		if !m.Cached && !m.Ganged {
			t.Errorf("%s/%s: fresh run not marked ganged", m.Config, m.Workload)
		}
	}
}

// TestEngineGangSingleCapture pins the capture-attribution fix: when a
// gang of configurations races over one uncaptured workload, the
// capture happens once and is charged to exactly one run's
// CaptureSeconds; the other gang members report only wait time
// (CaptureWaitSeconds), so summing CaptureSeconds across the sweep
// counts each capture once instead of once per gang member.
func TestEngineGangSingleCapture(t *testing.T) {
	eng := NewEngine()
	cfgs := []Config{BaselineConfig(), DependenceConfig()}
	if _, err := eng.RunMatrix(cfgs, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng.TraceStats(); ts.Captures != 1 {
		t.Fatalf("Captures = %d, want 1", ts.Captures)
	}
	owners := 0
	for _, m := range eng.Metrics() {
		if m.Cached {
			continue
		}
		if m.CaptureSeconds > 0 {
			owners++
			if m.CaptureWaitSeconds > 0 {
				t.Errorf("%s/%s reports both owned capture (%gs) and wait (%gs)",
					m.Config, m.Workload, m.CaptureSeconds, m.CaptureWaitSeconds)
			}
		}
	}
	if owners != 1 {
		t.Errorf("%d runs report owned capture time, want exactly 1", owners)
	}
}

// TestEngineGangSegmented checks the two-axis gang end to end: a
// segment-parallel exact run with slabs stitches bit-identical to the
// monolithic gang run (they share a run-cache key, so use separate
// engines) and is accounted as both a segment run and a gang run.
func TestEngineGangSegmented(t *testing.T) {
	segEng := NewEngine()
	segEng.SetSegments(4)
	monoEng := NewEngine()
	cfgs := []Config{BaselineConfig()}
	workloads := []string{"compress"}
	seg, err := segEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := monoEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	a, b := seg[0][0], mono[0][0]
	if a.IssuedPerCycle.Total() != b.IssuedPerCycle.Total() {
		t.Error("issue histograms diverge between segmented and monolithic gang runs")
	}
	a.HostAllocs, b.HostAllocs = 0, 0
	a.HostWallSeconds, b.HostWallSeconds = 0, 0
	a.IssuedPerCycle, b.IssuedPerCycle = nil, nil
	if a != b {
		t.Errorf("segmented gang stats diverge from monolithic:\n  %+v\n  %+v", a, b)
	}
	ts := segEng.TraceStats()
	if ts.SegmentRuns != 1 || ts.GangRuns != 1 {
		t.Errorf("segmented gang accounting: SegmentRuns=%d GangRuns=%d, want 1/1", ts.SegmentRuns, ts.GangRuns)
	}
	if ts.SlabHits == 0 {
		t.Error("segment workers shared no slabs")
	}
}
