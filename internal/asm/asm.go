// Package asm implements a two-pass assembler for the ISA in package isa.
//
// The accepted syntax is MIPS-flavoured:
//
//	        .data
//	table:  .word 1, 2, 0x30, -4
//	buf:    .space 256
//	msg:    .asciiz "hello"
//	        .text
//	main:   li   $t0, 100          # pseudo: load immediate
//	        la   $a0, table        # pseudo: load address
//	loop:   lw   $t1, 0($a0)
//	        lw   $t2, table+4($zero)
//	        add  $t3, $t1, $t2
//	        bne  $t3, $zero, loop
//	        out  $t3
//	        halt
//
// Comments start with '#' and run to end of line. Labels end with ':'.
// Branch and jump targets are labels resolving to instruction indices;
// data labels resolve to byte addresses relative to isa.DataBase.
// Immediates are full 32-bit values, so pseudo-instructions (li, la, move,
// nop, b, not, neg, and the imm-shift aliases sll/srl/sra) each expand to
// exactly one instruction.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error is an assembly error with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type assembler struct {
	file    string
	prog    *isa.Program
	inData  bool
	symbols map[string]uint32
	// fixups records instructions whose Imm must be patched with a
	// resolved symbol value after pass 1.
	fixups []fixup
}

type fixup struct {
	instIndex int
	expr      string
	line      int
	// addTo: resolved value is added to the existing Imm (for label+off
	// load/store forms); otherwise it replaces Imm.
	addTo bool
}

// Assemble translates source into a program. name is used for error
// messages and as Program.Name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{
		file:    name,
		prog:    &isa.Program{Name: name, Symbols: make(map[string]uint32)},
		symbols: make(map[string]uint32),
	}
	a.prog.Symbols = a.symbols
	for i, raw := range strings.Split(source, "\n") {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		v, err := a.eval(f.expr, f.line)
		if err != nil {
			return nil, err
		}
		if f.addTo {
			a.prog.Text[f.instIndex].Imm += v
		} else {
			a.prog.Text[f.instIndex].Imm = v
		}
	}
	return a.prog, nil
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) line(n int, raw string) error {
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly several) at line start.
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t\",") {
			break
		}
		label := s[:i]
		if _, dup := a.symbols[label]; dup {
			return a.errf(n, "duplicate label %q", label)
		}
		if a.inData {
			a.symbols[label] = isa.DataBase + uint32(len(a.prog.Data))
		} else {
			a.symbols[label] = uint32(len(a.prog.Text))
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	return a.instruction(n, s)
}

func (a *assembler) directive(n int, s string) error {
	fields := strings.SplitN(s, " ", 2)
	dir := strings.TrimSpace(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".data":
		a.inData = true
	case ".text":
		a.inData = false
	case ".word":
		if !a.inData {
			return a.errf(n, ".word outside .data")
		}
		a.align(4)
		for _, part := range splitOperands(rest) {
			v, err := a.eval(part, n)
			if err != nil {
				return err
			}
			a.emitWord(uint32(v))
		}
	case ".byte":
		if !a.inData {
			return a.errf(n, ".byte outside .data")
		}
		for _, part := range splitOperands(rest) {
			v, err := a.eval(part, n)
			if err != nil {
				return err
			}
			a.prog.Data = append(a.prog.Data, byte(v))
		}
	case ".space":
		if !a.inData {
			return a.errf(n, ".space outside .data")
		}
		v, err := a.eval(rest, n)
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf(n, ".space with negative size %d", v)
		}
		a.prog.Data = append(a.prog.Data, make([]byte, v)...)
	case ".align":
		v, err := a.eval(rest, n)
		if err != nil {
			return err
		}
		if v <= 0 || v > 12 {
			return a.errf(n, ".align %d out of range", v)
		}
		a.align(1 << uint(v))
	case ".asciiz":
		if !a.inData {
			return a.errf(n, ".asciiz outside .data")
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(n, "bad string %s: %v", rest, err)
		}
		a.prog.Data = append(a.prog.Data, []byte(str)...)
		a.prog.Data = append(a.prog.Data, 0)
	default:
		return a.errf(n, "unknown directive %s", dir)
	}
	return nil
}

func (a *assembler) align(to int) {
	for len(a.prog.Data)%to != 0 {
		a.prog.Data = append(a.prog.Data, 0)
	}
}

func (a *assembler) emitWord(v uint32) {
	a.prog.Data = append(a.prog.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// instruction parses one instruction (or pseudo-instruction) line.
func (a *assembler) instruction(n int, s string) error {
	if a.inData {
		return a.errf(n, "instruction inside .data: %q", s)
	}
	var mnemonic, rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mnemonic = s
	}
	ops := splitOperands(rest)
	emit := func(in isa.Inst) { a.prog.Text = append(a.prog.Text, in) }

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, a.errf(n, "%s: missing operand %d", mnemonic, i+1)
		}
		name := ops[i]
		if !strings.HasPrefix(name, "$") {
			return 0, a.errf(n, "%s: operand %d: want register, got %q", mnemonic, i+1, name)
		}
		r, ok := isa.RegByName(name[1:])
		if !ok {
			return 0, a.errf(n, "%s: unknown register %q", mnemonic, name)
		}
		return r, nil
	}
	// imm resolves operand i as an immediate/label expression. Label
	// references are deferred to pass 2 via fixups.
	imm := func(i, instIndex int) (int32, error) {
		if i >= len(ops) {
			return 0, a.errf(n, "%s: missing operand %d", mnemonic, i+1)
		}
		return a.immExpr(ops[i], n, instIndex, false)
	}

	switch mnemonic {
	// Pseudo-instructions.
	case "nop":
		emit(isa.Inst{Op: isa.Slli, Rd: isa.Zero, Rs: isa.Zero})
		return nil
	case "li", "la":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		idx := len(a.prog.Text)
		emit(isa.Inst{Op: isa.Addi, Rd: rd, Rs: isa.Zero})
		v, err := a.immExpr(opsAt(ops, 1), n, idx, false)
		if err != nil {
			return err
		}
		a.prog.Text[idx].Imm = v
		return nil
	case "move":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.Add, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil
	case "not":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.Nor, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil
	case "neg":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		emit(isa.Inst{Op: isa.Sub, Rd: rd, Rs: isa.Zero, Rt: rs})
		return nil
	case "b":
		idx := len(a.prog.Text)
		emit(isa.Inst{Op: isa.J})
		if len(ops) != 1 {
			return a.errf(n, "b: want one target operand")
		}
		a.fixups = append(a.fixups, fixup{instIndex: idx, expr: ops[0], line: n})
		return nil
	case "sll", "srl", "sra":
		// Immediate-shift aliases: third operand is an immediate.
		if len(ops) == 3 && !strings.HasPrefix(ops[2], "$") {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs, err := reg(1)
			if err != nil {
				return err
			}
			op := map[string]isa.Op{"sll": isa.Slli, "srl": isa.Srli, "sra": isa.Srai}[mnemonic]
			idx := len(a.prog.Text)
			emit(isa.Inst{Op: op, Rd: rd, Rs: rs})
			v, err := imm(2, idx)
			if err != nil {
				return err
			}
			a.prog.Text[idx].Imm = v
			return nil
		}
		// Register shifts fall through to the sllv family.
		mnemonic += "v"
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return a.errf(n, "unknown instruction %q", mnemonic)
	}
	idx := len(a.prog.Text)
	switch isa.ClassOf(op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		switch op {
		case isa.Lui:
			emit(isa.Inst{Op: op, Rd: rd})
			v, err := imm(1, idx)
			if err != nil {
				return err
			}
			a.prog.Text[idx].Imm = v
		case isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Slli, isa.Srli, isa.Srai, isa.Slti, isa.Sltiu:
			rs, err := reg(1)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rd: rd, Rs: rs})
			v, err := imm(2, idx)
			if err != nil {
				return err
			}
			a.prog.Text[idx].Imm = v
		default:
			rs, err := reg(1)
			if err != nil {
				return err
			}
			rt, err := reg(2)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
		}
	case isa.ClassLoad, isa.ClassStore:
		r0, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return a.errf(n, "%s: want 'reg, offset(base)'", mnemonic)
		}
		offExpr, base, err := a.splitMem(ops[1], n)
		if err != nil {
			return err
		}
		in := isa.Inst{Op: op, Rs: base}
		if isa.ClassOf(op) == isa.ClassLoad {
			in.Rd = r0
		} else {
			in.Rt = r0
		}
		emit(in)
		v, err := a.immExpr(offExpr, n, idx, false)
		if err != nil {
			return err
		}
		a.prog.Text[idx].Imm += v
	case isa.ClassBranch:
		switch op {
		case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			rt, err := reg(1)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rs: rs, Rt: rt})
			if len(ops) != 3 {
				return a.errf(n, "%s: want 'rs, rt, target'", mnemonic)
			}
			a.fixups = append(a.fixups, fixup{instIndex: idx, expr: ops[2], line: n})
		default:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rs: rs})
			if len(ops) != 2 {
				return a.errf(n, "%s: want 'rs, target'", mnemonic)
			}
			a.fixups = append(a.fixups, fixup{instIndex: idx, expr: ops[1], line: n})
		}
	case isa.ClassJump:
		switch op {
		case isa.Jr, isa.Jalr:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rs: rs})
		default:
			emit(isa.Inst{Op: op})
			if len(ops) != 1 {
				return a.errf(n, "%s: want one target operand", mnemonic)
			}
			a.fixups = append(a.fixups, fixup{instIndex: idx, expr: ops[0], line: n})
		}
	case isa.ClassSystem:
		if op == isa.Out {
			rs, err := reg(0)
			if err != nil {
				return err
			}
			emit(isa.Inst{Op: op, Rs: rs})
		} else {
			emit(isa.Inst{Op: op})
		}
	}
	return nil
}

func opsAt(ops []string, i int) string {
	if i < len(ops) {
		return ops[i]
	}
	return ""
}

// splitMem parses "offsetExpr($reg)" into its parts.
func (a *assembler) splitMem(s string, line int) (string, isa.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", 0, a.errf(line, "bad memory operand %q: want offset(reg)", s)
	}
	regName := s[open+1 : len(s)-1]
	if !strings.HasPrefix(regName, "$") {
		return "", 0, a.errf(line, "bad base register %q", regName)
	}
	r, ok := isa.RegByName(regName[1:])
	if !ok {
		return "", 0, a.errf(line, "unknown base register %q", regName)
	}
	off := s[:open]
	if off == "" {
		off = "0"
	}
	return off, r, nil
}

// immExpr resolves an immediate expression now if it is numeric, or defers
// label resolution to pass 2.
func (a *assembler) immExpr(expr string, line, instIndex int, addTo bool) (int32, error) {
	if expr == "" {
		return 0, a.errf(line, "missing immediate operand")
	}
	if v, err := parseInt(expr); err == nil {
		return v, nil
	}
	a.fixups = append(a.fixups, fixup{instIndex: instIndex, expr: expr, line: line, addTo: addTo})
	return 0, nil
}

// eval resolves an expression of the form int, label, label+int or
// label-int.
func (a *assembler) eval(expr string, line int) (int32, error) {
	expr = strings.TrimSpace(expr)
	if v, err := parseInt(expr); err == nil {
		return v, nil
	}
	base := expr
	var off int32
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(expr, sep); i > 0 {
			v, err := parseInt(expr[i+1:])
			if err != nil {
				continue
			}
			base = expr[:i]
			if sep == '-' {
				v = -v
			}
			off = v
			break
		}
	}
	v, ok := a.symbols[base]
	if !ok {
		return 0, a.errf(line, "undefined symbol %q", base)
	}
	return int32(v) + off, nil
}

func parseInt(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(uint32(v)), nil
}

// splitOperands splits a comma-separated operand list, trimming space and
// keeping quoted strings intact.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
