package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(isa.NumRegs); err == nil {
		t.Error("New with no spare registers succeeded")
	}
	rt, err := New(120)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumPhys() != 120 {
		t.Errorf("NumPhys = %d", rt.NumPhys())
	}
	if rt.Available() != 120-isa.NumRegs {
		t.Errorf("Available = %d, want %d", rt.Available(), 120-isa.NumRegs)
	}
}

func TestInitialIdentityMapping(t *testing.T) {
	rt, _ := New(64)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if rt.Lookup(r) != int16(r) {
			t.Errorf("initial mapping of %s = %d", r, rt.Lookup(r))
		}
	}
}

func TestRenameTracksDependences(t *testing.T) {
	rt, _ := New(64)
	// i1: t0 = t1 + t2
	srcs, d1, old1, ok := rt.Rename(nil, []isa.Reg{isa.T1, isa.T2}, isa.T0, true)
	if !ok {
		t.Fatal("rename failed")
	}
	if srcs[0] != int16(isa.T1) || srcs[1] != int16(isa.T2) {
		t.Errorf("sources = %v, want initial mappings", srcs)
	}
	if old1 != int16(isa.T0) {
		t.Errorf("old dest = %d, want initial %d", old1, isa.T0)
	}
	// i2: t3 = t0 + t0 — must see i1's new mapping.
	srcs2, _, _, ok := rt.Rename(nil, []isa.Reg{isa.T0, isa.T0}, isa.T3, true)
	if !ok {
		t.Fatal("rename failed")
	}
	if srcs2[0] != d1 || srcs2[1] != d1 {
		t.Errorf("i2 sources = %v, want both %d", srcs2, d1)
	}
}

func TestRenameWithoutDest(t *testing.T) {
	rt, _ := New(40)
	avail := rt.Available()
	_, d, old, ok := rt.Rename(nil, []isa.Reg{isa.T0}, 0, false)
	if !ok || d != None || old != None {
		t.Errorf("no-dest rename: d=%d old=%d ok=%v", d, old, ok)
	}
	if rt.Available() != avail {
		t.Error("no-dest rename consumed a register")
	}
}

func TestExhaustionAndRelease(t *testing.T) {
	rt, _ := New(34) // two spare registers
	_, d1, old1, ok := rt.Rename(nil, nil, isa.T0, true)
	if !ok {
		t.Fatal("first rename failed")
	}
	_, _, _, ok = rt.Rename(nil, nil, isa.T1, true)
	if !ok {
		t.Fatal("second rename failed")
	}
	if _, _, _, ok = rt.Rename(nil, nil, isa.T2, true); ok {
		t.Fatal("rename succeeded with empty free list")
	}
	// Committing the first instruction frees its old mapping.
	rt.Release(old1)
	_, d3, _, ok := rt.Rename(nil, nil, isa.T2, true)
	if !ok {
		t.Fatal("rename after release failed")
	}
	if d3 != old1 {
		t.Errorf("reallocated %d, want released %d", d3, old1)
	}
	_ = d1
}

func TestUndo(t *testing.T) {
	rt, _ := New(64)
	before := rt.Lookup(isa.T0)
	avail := rt.Available()
	_, d, old, ok := rt.Rename(nil, nil, isa.T0, true)
	if !ok {
		t.Fatal("rename failed")
	}
	rt.Undo(isa.T0, d, old)
	if rt.Lookup(isa.T0) != before {
		t.Errorf("mapping after undo = %d, want %d", rt.Lookup(isa.T0), before)
	}
	if rt.Available() != avail {
		t.Errorf("available after undo = %d, want %d", rt.Available(), avail)
	}
	// Undo of a no-dest rename is a no-op.
	rt.Undo(isa.T0, None, None)
	if rt.Available() != avail {
		t.Error("undo of no-dest rename changed the free list")
	}
}

func TestInFlightTracksAllocations(t *testing.T) {
	rt, _ := New(40)
	if rt.InFlight() != 0 {
		t.Fatalf("fresh table InFlight = %d, want 0", rt.InFlight())
	}
	_, d, old, ok := rt.Rename(nil, nil, isa.T0, true)
	if !ok {
		t.Fatal("rename failed")
	}
	if rt.InFlight() != 1 {
		t.Errorf("after one rename InFlight = %d, want 1", rt.InFlight())
	}
	_, _, old2, ok := rt.Rename(nil, nil, isa.T1, true)
	if !ok {
		t.Fatal("rename failed")
	}
	if rt.InFlight() != 2 {
		t.Errorf("after two renames InFlight = %d, want 2", rt.InFlight())
	}
	// Commit path: releasing the previous mappings restores balance.
	rt.Release(old)
	rt.Release(old2)
	if rt.InFlight() != 0 {
		t.Errorf("after releases InFlight = %d, want 0 (leak)", rt.InFlight())
	}
	// Squash path: Undo restores balance too.
	_, d, old, _ = rt.Rename(nil, nil, isa.T2, true)
	rt.Undo(isa.T2, d, old)
	if rt.InFlight() != 0 {
		t.Errorf("after undo InFlight = %d, want 0", rt.InFlight())
	}
}

func TestReleaseNoneIsNoop(t *testing.T) {
	rt, _ := New(40)
	avail := rt.Available()
	rt.Release(None)
	if rt.Available() != avail {
		t.Error("Release(None) changed the free list")
	}
}

func TestPropertyNoDoubleAllocation(t *testing.T) {
	// Under random rename/release traffic, a live physical register is
	// never handed out twice.
	f := func(ops []uint8) bool {
		rt, err := New(48)
		if err != nil {
			return false
		}
		live := map[int16]bool{}
		var pending []int16 // oldDests awaiting commit
		for _, op := range ops {
			dest := isa.Reg(op % isa.NumRegs)
			if op%3 == 0 && len(pending) > 0 {
				rt.Release(pending[0])
				delete(live, pending[0])
				pending = pending[1:]
				continue
			}
			_, d, old, ok := rt.Rename(nil, nil, dest, true)
			if !ok {
				continue
			}
			if live[d] {
				return false // double allocation
			}
			live[d] = true
			if old != None {
				pending = append(pending, old)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
