package ring

import "testing"

func TestPushPopFIFO(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.PushBack(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Front() != 0 || b.Back() != 99 {
		t.Fatalf("Front/Back = %d/%d, want 0/99", b.Front(), b.Back())
	}
	for i := 0; i < 100; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

// TestWraparound drives head and tail around the backing array many times
// at constant occupancy, so pushes and pops cross the wrap point.
func TestWraparound(t *testing.T) {
	var b Buffer[int]
	next := 0
	for i := 0; i < 12; i++ {
		b.PushBack(i)
	}
	for step := 0; step < 1000; step++ {
		if got := b.PopFront(); got != next {
			t.Fatalf("step %d: PopFront = %d, want %d", step, got, next)
		}
		next++
		b.PushBack(step + 12)
		if b.Len() != 12 {
			t.Fatalf("step %d: Len = %d, want 12", step, b.Len())
		}
		for i := 0; i < b.Len(); i++ {
			if got := b.At(i); got != next+i {
				t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, next+i)
			}
		}
	}
}

// TestGrowWhileWrapped forces a capacity doubling while the contents wrap
// around the end of the backing array.
func TestGrowWhileWrapped(t *testing.T) {
	var b Buffer[int]
	// Fill to the initial capacity of 16, then rotate so head != 0.
	for i := 0; i < 16; i++ {
		b.PushBack(i)
	}
	for i := 0; i < 10; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
		b.PushBack(16 + i)
	}
	// Buffer holds 10..25 wrapped; pushing past capacity triggers grow.
	for i := 26; i < 40; i++ {
		b.PushBack(i)
	}
	if b.Len() != 30 {
		t.Fatalf("Len = %d, want 30", b.Len())
	}
	for i := 0; i < 30; i++ {
		if got := b.At(i); got != 10+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 10+i)
		}
	}
	for i := 0; i < 30; i++ {
		if got := b.PopFront(); got != 10+i {
			t.Fatalf("PopFront = %d, want %d", got, 10+i)
		}
	}
}

func TestPopBack(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 20; i++ {
		b.PushBack(i)
	}
	for i := 19; i >= 10; i-- {
		if got := b.PopBack(); got != i {
			t.Fatalf("PopBack = %d, want %d", got, i)
		}
	}
	if b.Front() != 0 || b.Back() != 9 {
		t.Fatalf("Front/Back = %d/%d, want 0/9", b.Front(), b.Back())
	}
}

// TestPopZeroesSlots checks that removed elements are not retained through
// the backing array (the ROB reslice leak this package exists to fix).
func TestPopZeroesSlots(t *testing.T) {
	var b Buffer[*int]
	v := new(int)
	b.PushBack(v)
	b.PopFront()
	for i, p := range b.buf {
		if p != nil {
			t.Fatalf("buf[%d] still set after PopFront", i)
		}
	}
	b.PushBack(v)
	b.PushBack(v)
	b.Clear()
	for i, p := range b.buf {
		if p != nil {
			t.Fatalf("buf[%d] still set after Clear", i)
		}
	}
	b.PushBack(v)
	b.PopBack()
	for i, p := range b.buf {
		if p != nil {
			t.Fatalf("buf[%d] still set after PopBack", i)
		}
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on empty buffer did not panic", name)
			}
		}()
		f()
	}
	var b Buffer[int]
	expectPanic("PopFront", func() { b.PopFront() })
	expectPanic("PopBack", func() { b.PopBack() })
	expectPanic("Front", func() { b.Front() })
	expectPanic("Back", func() { b.Back() })
	expectPanic("At", func() { b.At(0) })
}
