// Ceasm is the developer tool for the simulator's assembly language: it
// assembles a source file and disassembles it, runs it on the functional
// emulator, or dumps one of the built-in benchmark programs.
//
// Usage:
//
//	ceasm -run prog.s          # assemble and execute, print outputs
//	ceasm -dump prog.s         # assemble and disassemble
//	ceasm -workload compress -dump ""   # disassemble a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/profile"
	"repro/internal/prog"
)

var (
	runFile  = flag.String("run", "", "assemble (or load) and execute this source or object file")
	dumpFile = flag.String("dump", "", "assemble (or load) and disassemble this source or object file")
	workload = flag.String("workload", "", "operate on a built-in workload instead of a file")
	output   = flag.String("o", "", "write the assembled program as a binary object to this path")
	doProf   = flag.Bool("profile", false, "print the program's dynamic profile instead of running it")
	maxInsts = flag.Uint64("max", 50_000_000, "instruction budget for -run")
)

func main() {
	flag.Parse()
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "ceasm:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	p, err := load()
	if err != nil {
		return err
	}
	if p == nil && *output != "" {
		return fmt.Errorf("-o needs a program: pass -run, -dump or -workload")
	}
	if p == nil {
		flag.Usage()
		return fmt.Errorf("pass -run FILE, -dump FILE or -workload NAME")
	}
	if *output != "" {
		if err := os.WriteFile(*output, obj.Encode(p), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d instructions, %d data bytes\n", *output, len(p.Text), len(p.Data))
		if *runFile == "" && *dumpFile == "" {
			return nil
		}
	}
	if *doProf {
		r, err := profile.Profile(p, *maxInsts)
		if err != nil {
			return err
		}
		fmt.Print(r.String())
		return nil
	}
	if *dumpFile != "" || (*workload != "" && *runFile == "") {
		dump(p)
		return nil
	}
	m := emu.New(p)
	for !m.Halted() {
		if m.Executed >= *maxInsts {
			return fmt.Errorf("%s exceeded %d instructions", p.Name, *maxInsts)
		}
		if _, err := m.Step(); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d instructions executed\n", p.Name, m.Executed)
	for i, v := range m.Output {
		fmt.Printf("out[%d] = %d (%#x)\n", i, v, uint32(v))
	}
	return nil
}

func load() (*isa.Program, error) {
	if *workload != "" {
		w, err := prog.ByName(*workload)
		if err != nil {
			return nil, err
		}
		return w.Program()
	}
	name := *runFile
	if name == "" {
		name = *dumpFile
	}
	if name == "" {
		return nil, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if obj.IsObject(src) {
		return obj.Decode(name, src)
	}
	return asm.Assemble(name, string(src))
}

func dump(p *isa.Program) {
	labels := map[uint32][]string{}
	for sym, v := range p.Symbols {
		if v < uint32(len(p.Text)) {
			labels[v] = append(labels[v], sym)
		}
	}
	for i, in := range p.Text {
		for _, l := range labels[uint32(i)] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("%5d:  %s\n", i, in)
	}
	fmt.Printf("# %d instructions, %d data bytes\n", len(p.Text), len(p.Data))
}
