// Package detlint statically enforces the simulator's bit-determinism
// contract. The differential fuzzing harness and the run cache are both
// unsound if two runs of the same configuration can diverge, so packages
// marked //ce:deterministic must not let any nondeterminism source — map
// iteration order, the host clock, math/rand, goroutine scheduling,
// pointer formatting — influence their observable behavior.
//
// Rules, in packages carrying the //ce:deterministic marker:
//
//   - map iteration whose order escapes: a `for range` over a map is
//     flagged when its body writes outer state order-dependently, appends
//     to an outer slice (unless the slice is immediately sorted — the
//     collect-keys-then-sort idiom), exits the loop early, sends on a
//     channel, or leaks the iteration order through a call. Pure
//     membership counting, distinct-key writes (`out[k] = v`) and
//     commutative integer accumulation (`n += v`) pass.
//   - time.Now / time.Since / time.Until (host clock reads).
//   - any math/rand import.
//   - goroutine launches (the cycle loop is single-threaded by contract).
//   - %p format verbs (pointer values differ run to run).
//
// The analysis is also interprocedural: detlint runs fact-only over every
// package of the module (marked or not), recording a DetFact for each
// function that transitively reaches a nondeterminism source, propagated
// bottom-up over the package DAG. A //ce:deterministic package calling
// another package's function whose fact says "nondeterministic" is a
// finding at the call site, with the callee chain down to the root source
// in the message. Within a marked package only the direct sites are
// reported (every function there is checked directly, so flagging callers
// too would be noise), and marked packages export no nondet facts — their
// own pass enforces the contract, so callers may trust them.
//
// Two hatches, both reason-bearing:
//
//   - `//ce:nondet-ok <reason>` suppresses a finding on its line and
//     excludes the site (or call) from fact propagation.
//   - `//ce:det-boundary <reason>` on a function declaration marks an
//     abstraction seam: the function's internals are asserted not to leak
//     nondeterminism to callers, so no fact is computed for it and calls
//     to it are never flagged transitively. Direct findings inside marked
//     packages are unaffected — the seam hatch is for callee packages.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name:      "detlint",
	Doc:       "flags nondeterminism sources in (and transitively reachable from) //ce:deterministic packages",
	Run:       run,
	FactTypes: []analysis.Fact{new(DetFact)},
}

// DetFact is detlint's verdict on one function, exported for functions
// with exported names in unmarked packages.
type DetFact struct {
	// Nondet marks a function that transitively reaches a nondeterminism
	// source.
	Nondet bool
	// Boundary marks a //ce:det-boundary seam: never flagged, never
	// propagated through.
	Boundary bool
	// Why describes the root source ("time.Now reads the host clock").
	Why string
	// Trail is the call chain from this function down to the source,
	// starting with this function's own name.
	Trail []string
}

// AFact marks DetFact as a fact type.
func (*DetFact) AFact() {}

// chain renders the fact for a finding message.
func (f *DetFact) chain() string {
	return strings.Join(f.Trail, " → ") + ": " + f.Why
}

// dcall is one statically-resolved call inside a function.
type dcall struct {
	pos     token.Pos
	callee  *types.Func
	hatched bool
}

// fnData is the per-function fact-collection state.
type fnData struct {
	obj      *types.Func
	boundary bool
	firstWhy string // first unhatched direct nondet source, "" if none
	calls    []dcall
	fact     *DetFact
}

func run(pass *analysis.Pass) (any, error) {
	marked := directive.PackageMarked(pass.Files, directive.Deterministic)

	// Direct-site reporting, in marked packages only (unchanged from the
	// intra-package analyzer).
	if marked {
		for _, f := range pass.Files {
			c := &checker{pass: pass, hatch: directive.NewIndex(pass.Fset, f, directive.NondetOK)}
			c.emit = func(pos token.Pos, category, msg string) {
				pass.Report(analysis.Diagnostic{Pos: pos, Category: category, Message: msg})
			}
			c.file(f)
		}
	}

	// Fact collection, in every package: per function, the first unhatched
	// direct source plus the statically-resolved calls.
	var fns []*fnData
	byObj := make(map[*types.Func]*fnData)
	for _, f := range pass.Files {
		hatch := directive.NewIndex(pass.Fset, f, directive.NondetOK)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			d := &fnData{obj: obj, boundary: directive.FuncMarked(fd, directive.DetBoundary)}
			if !d.boundary {
				c := &checker{pass: pass, hatch: hatch, factMode: true}
				c.emit = func(pos token.Pos, category, msg string) {
					if d.firstWhy == "" {
						d.firstWhy = msg
					}
				}
				c.funcBody(f, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pass.TypesInfo, call); callee != nil {
						_, hatched := hatch.Covering(call.Pos())
						d.calls = append(d.calls, dcall{pos: call.Pos(), callee: callee, hatched: hatched})
					}
					return true
				})
			}
			fns = append(fns, d)
			byObj[obj] = d
		}
	}

	// Propagate to a fixpoint in deterministic (source) order.
	for _, d := range fns {
		d.fact = &DetFact{Boundary: d.boundary}
		if d.firstWhy != "" {
			d.fact.Nondet = true
			d.fact.Why = d.firstWhy
			d.fact.Trail = []string{d.obj.Name()}
		}
	}
	calleeFact := func(callee *types.Func) *DetFact {
		if d, ok := byObj[callee]; ok {
			return d.fact
		}
		if pass.ImportObjectFact == nil {
			return nil
		}
		var f DetFact
		if pass.ImportObjectFact(callee, &f) {
			return &f
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, d := range fns {
			if d.fact.Nondet || d.boundary {
				continue
			}
			for _, cs := range d.calls {
				if cs.hatched {
					continue
				}
				cf := calleeFact(cs.callee)
				if cf == nil || cf.Boundary || !cf.Nondet {
					continue
				}
				d.fact.Nondet = true
				d.fact.Why = cf.Why
				d.fact.Trail = append([]string{d.obj.Name()}, cf.Trail...)
				changed = true
				break
			}
		}
	}

	// Marked packages export no nondet facts: their own pass enforces the
	// contract, so callers may trust them.
	if pass.ExportObjectFact != nil && !marked {
		for _, d := range fns {
			if d.fact.Nondet && ast.IsExported(d.obj.Name()) {
				pass.ExportObjectFact(d.obj, d.fact)
			}
		}
	}

	// Transitive findings: a marked package calling another package's
	// nondeterministic function. Intra-package sites were reported
	// directly above.
	if marked {
		for _, d := range fns {
			if d.boundary {
				continue
			}
			for _, cs := range d.calls {
				if cs.hatched || cs.callee.Pkg() == pass.Pkg {
					continue
				}
				cf := calleeFact(cs.callee)
				if cf == nil || cf.Boundary || !cf.Nondet {
					continue
				}
				pass.Report(analysis.Diagnostic{
					Pos:      cs.pos,
					Category: "transitive-nondet",
					Message: fmt.Sprintf("call to %s is transitively nondeterministic (%s) in a //ce:deterministic package; add //ce:nondet-ok <reason> or mark the callee //ce:det-boundary <reason>",
						calleeLabel(pass.Pkg, cs.callee), cf.chain()),
				})
			}
		}
	}
	return nil, nil
}

// staticCallee resolves a call to its target function when the target is
// known statically.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeLabel names a callee for a finding message, package-qualified
// when it lives elsewhere.
func calleeLabel(from *types.Package, callee *types.Func) string {
	if callee.Pkg() == nil || callee.Pkg() == from {
		return callee.Name()
	}
	return callee.Pkg().Name() + "." + callee.Name()
}

type checker struct {
	pass  *analysis.Pass
	hatch *directive.Index
	emit  func(pos token.Pos, category, msg string)
	// factMode strips reader-facing advice from messages, since fact text
	// is embedded in the transitive findings of other packages.
	factMode bool
}

// report emits a diagnostic unless an escape hatch covers pos.
func (c *checker) report(pos token.Pos, category, format string, args ...any) {
	if _, ok := c.hatch.Covering(pos); ok {
		return
	}
	c.emit(pos, category, fmt.Sprintf(format, args...))
}

// funcBody applies the direct-site rules to one function body, feeding
// the checker's emit sink (used for fact collection).
func (c *checker) funcBody(f *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.report(n.Pos(), "goroutine", "launches a goroutine (scheduling order is nondeterministic)")
		case *ast.CallExpr:
			c.call(n)
		case *ast.RangeStmt:
			c.rangeStmt(n, followingStmts(f, n))
		}
		return true
	})
}

func (c *checker) file(f *ast.File) {
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path == "math/rand" || path == "math/rand/v2" {
			c.report(imp.Pos(), "rand",
				"import of %s in a //ce:deterministic package (seeded prog-level randomness belongs outside the simulator core)", path)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.report(n.Pos(), "goroutine",
				"goroutine launch in a //ce:deterministic package (scheduling order is nondeterministic)")
		case *ast.CallExpr:
			c.call(n)
		case *ast.RangeStmt:
			c.rangeStmt(n, followingStmts(f, n))
		}
		return true
	})
}

// call flags host-clock reads and %p formatting.
func (c *checker) call(call *ast.CallExpr) {
	if pkg, name := c.calleePkgFunc(call); pkg == "time" && (name == "Now" || name == "Since" || name == "Until") {
		suffix := " in a //ce:deterministic package"
		if c.factMode {
			suffix = "" // fact text travels into other packages' messages
		}
		c.report(call.Pos(), "clock",
			"time.%s reads the host clock%s", name, suffix)
	} else if pkg == "fmt" {
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%p") {
				c.report(lit.Pos(), "pointer-format",
					"%%p formats a pointer value, which differs run to run")
			}
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) for
// direct package-level calls like time.Now(); otherwise ("", "").
func (c *checker) calleePkgFunc(call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// rangeStmt analyzes one `for range` over a map for order escapes.
// following holds the statements after the loop in its enclosing block
// (for the collect-then-sort exemption).
func (c *checker) rangeStmt(rs *ast.RangeStmt, following []ast.Stmt) {
	t := c.pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	w := newEscapeWalker(c.pass.TypesInfo, rs)
	w.walkBody()
	if w.esc == "" {
		return
	}
	if w.onlyAppends && w.sortable != nil && c.sortedAfter(w.sortable, following) {
		return
	}
	if c.factMode {
		c.report(rs.For, "map-order", "map iteration order escapes (%s)", w.esc)
		return
	}
	c.report(rs.For, "map-order",
		"map iteration order escapes (%s); iterate a sorted key slice or add //ce:nondet-ok <reason>", w.esc)
}

// escapeWalker classifies the effects of one map-range body. It records
// the first order escape; when the only escapes are appends to a single
// outer slice variable, that variable is the collect-then-sort candidate.
type escapeWalker struct {
	info     *types.Info
	rs       *ast.RangeStmt
	loopVars map[types.Object]bool // the range key/value variables
	inner    map[types.Object]bool // objects declared inside the body

	esc         string     // first escape description ("" = none)
	sortable    *ast.Ident // sole append target, when exempt-eligible
	onlyAppends bool
}

func newEscapeWalker(info *types.Info, rs *ast.RangeStmt) *escapeWalker {
	w := &escapeWalker{
		info:        info,
		rs:          rs,
		loopVars:    make(map[types.Object]bool),
		inner:       make(map[types.Object]bool),
		onlyAppends: true,
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			w.loopVars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			w.loopVars[obj] = true // `for k = range m` assigning an outer k
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				w.inner[obj] = true
			}
		}
		return true
	})
	return w
}

// escape records a non-append order escape.
func (w *escapeWalker) escape(why string) {
	if w.esc == "" {
		w.esc = why
	}
	w.onlyAppends = false
}

func (w *escapeWalker) walkBody() {
	// `for k = range m` with an outer k leaves the last-iterated key
	// behind, which is itself order-dependent.
	if w.rs.Tok == token.ASSIGN {
		for _, e := range []ast.Expr{w.rs.Key, w.rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				w.escape(fmt.Sprintf("loop variable %q outlives the loop with the last-iterated element", id.Name))
			}
		}
	}
	w.walk(w.rs.Body, walkCtx{})
}

// walkCtx tracks the syntactic context of the node being visited.
type walkCtx struct {
	loopDepth   int // nested for/range loops below the map range
	switchDepth int // nested switch/select (unlabeled break targets these)
	funcDepth   int // nested function literals (return exits these)
}

// walk visits n, dispatching statements to effect classification. It
// recurses manually so each node sees its enclosing context.
func (w *escapeWalker) walk(n ast.Node, ctx walkCtx) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, s := range n.List {
			w.walk(s, ctx)
		}
	case *ast.IfStmt:
		w.walk(n.Init, ctx)
		w.walkExpr(n.Cond, ctx)
		w.walk(n.Body, ctx)
		w.walk(n.Else, ctx)
	case *ast.ForStmt:
		inner := ctx
		inner.loopDepth++
		w.walk(n.Init, inner)
		w.walkExpr(n.Cond, inner)
		w.walk(n.Post, inner)
		w.walk(n.Body, inner)
	case *ast.RangeStmt:
		inner := ctx
		inner.loopDepth++
		w.walkExpr(n.X, ctx)
		// An inner map range is itself suspect, but the enclosing Inspect
		// visits it separately; here it only contributes its body effects.
		if n.Tok == token.ASSIGN {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					w.checkWrite(e, token.ASSIGN, nil, inner)
				}
			}
		}
		w.walk(n.Body, inner)
	case *ast.SwitchStmt:
		inner := ctx
		inner.switchDepth++
		w.walk(n.Init, ctx)
		w.walkExpr(n.Tag, ctx)
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(e, ctx)
				}
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		inner := ctx
		inner.switchDepth++
		w.walk(n.Init, ctx)
		w.walk(n.Assign, ctx)
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.SelectStmt:
		inner := ctx
		inner.switchDepth++
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walk(cc.Comm, inner)
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if ctx.funcDepth > 0 {
				return
			}
			if n.Label != nil {
				w.escape("labeled break exits the loop early")
			} else if ctx.loopDepth == 0 && ctx.switchDepth == 0 {
				w.escape("break exits the loop early")
			}
		case token.GOTO:
			if ctx.funcDepth == 0 {
				w.escape("goto may exit the loop early")
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.walkExpr(r, ctx)
		}
		if ctx.funcDepth == 0 {
			w.escape("return exits the loop early")
		}
	case *ast.SendStmt:
		w.escape("channel send publishes values in iteration order")
	case *ast.DeferStmt, *ast.GoStmt:
		// Reported separately (GoStmt) or out of scope; still scan args.
		if d, ok := n.(*ast.DeferStmt); ok {
			w.walkExpr(d.Call, ctx)
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(w.info, call, "append") {
				w.checkAppend(lhs, call, ctx)
				for _, arg := range call.Args[1:] {
					w.walkExpr(arg, ctx)
				}
				continue
			}
			w.checkWrite(lhs, n.Tok, rhs, ctx)
			if rhs != nil {
				w.walkExpr(rhs, ctx)
			}
		}
	case *ast.IncDecStmt:
		w.checkWrite(n.X, n.Tok, nil, ctx)
	case *ast.ExprStmt:
		w.walkExpr(n.X, ctx)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, ctx)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walk(n.Stmt, ctx)
	}
}

// walkExpr scans an expression for calls and function literals.
func (w *escapeWalker) walkExpr(e ast.Expr, ctx walkCtx) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		inner := ctx
		inner.funcDepth++
		w.walk(e.Body, inner)
	case *ast.CallExpr:
		w.checkCall(e, ctx)
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				inner := ctx
				inner.funcDepth++
				w.walk(n.Body, inner)
				return false
			case *ast.CallExpr:
				w.checkCall(n, ctx)
				return false
			}
			return true
		})
	}
}

// checkCall classifies a call inside the loop body.
func (w *escapeWalker) checkCall(call *ast.CallExpr, ctx walkCtx) {
	// A type conversion (float64(n), T(v)) is pure: it produces a value
	// without observing anything about iteration order. Only its operand
	// needs scanning.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			w.walkExpr(arg, ctx)
		}
		return
	}
	switch {
	case isBuiltin(w.info, call, "append"):
		// An append whose result is discarded or nested has no visible
		// destination here; the enclosing AssignStmt case handles the
		// common shape. Scan arguments for nested calls.
	case isBuiltin(w.info, call, "delete"):
		// delete(m2, k) removes a distinct key per iteration, and deleting
		// a loop-independent key is idempotent; both are order-safe.
		return
	case isBuiltin(w.info, call, "len"), isBuiltin(w.info, call, "cap"),
		isBuiltin(w.info, call, "min"), isBuiltin(w.info, call, "max"),
		isBuiltin(w.info, call, "copy"):
	default:
		// A call receiving the loop variables can do anything with them —
		// hash, print, accumulate — in iteration order.
		for _, arg := range call.Args {
			if w.usesLoopVar(arg) {
				w.escape(fmt.Sprintf("iteration order escapes into call %s", types.ExprString(call.Fun)))
				return
			}
		}
		// A method call on a loop variable leaks order the same way.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && w.usesLoopVar(sel.X) {
			w.escape(fmt.Sprintf("iteration order escapes into call %s", types.ExprString(call.Fun)))
			return
		}
	}
	for _, arg := range call.Args {
		w.walkExpr(arg, ctx)
	}
}

// checkAppend handles `lhs = append(src, ...)`.
func (w *escapeWalker) checkAppend(lhs ast.Expr, call *ast.CallExpr, ctx walkCtx) {
	root := w.rootObj(lhs)
	if root == nil || w.inner[root] || w.loopVars[root] {
		return // per-iteration slice
	}
	id, isIdent := lhs.(*ast.Ident)
	if !isIdent {
		w.escape(fmt.Sprintf("append to %q records iteration order", types.ExprString(lhs)))
		return
	}
	if w.esc == "" {
		w.esc = fmt.Sprintf("append to %q records iteration order", id.Name)
	}
	// Sortability: all appends must target this same object.
	obj := w.objOf(id)
	if w.sortable == nil && w.onlyAppends {
		w.sortable = id
	} else if w.sortable != nil && w.objOf(w.sortable) != obj {
		w.sortable = nil
		w.onlyAppends = false
	}
}

// checkWrite classifies one assignment to lhs with operator tok.
func (w *escapeWalker) checkWrite(lhs ast.Expr, tok token.Token, rhs ast.Expr, ctx walkCtx) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := w.rootObj(lhs)
	if root == nil || w.inner[root] || w.loopVars[root] {
		return // per-iteration or loop-variable state
	}
	// Distinct-key stores: out[k] = ... touches a different element each
	// iteration, so ordering between iterations cannot matter.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && w.usesLoopVar(ix.Index) {
		return
	}
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if w.isInteger(lhs) {
			return // commutative, associative integer accumulation
		}
		w.escape(fmt.Sprintf("order-dependent %s to %q", tok, types.ExprString(lhs)))
	case token.INC, token.DEC:
		if w.isInteger(lhs) {
			return
		}
		w.escape(fmt.Sprintf("order-dependent %s of %q", tok, types.ExprString(lhs)))
	case token.ASSIGN, token.DEFINE:
		// Overwriting an outer variable with an iteration-independent
		// value ("found = true") lands on the same state whatever the
		// order.
		if rhs != nil && !w.usesLoopVar(rhs) && !hasCall(rhs) {
			return
		}
		w.escape(fmt.Sprintf("last-writer-wins assignment to %q", types.ExprString(lhs)))
	default:
		w.escape(fmt.Sprintf("order-dependent %s to %q", tok, types.ExprString(lhs)))
	}
}

func (w *escapeWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.info.Uses[id]; obj != nil {
		return obj
	}
	return w.info.Defs[id]
}

// rootObj resolves the outermost base identifier of an lvalue chain
// (x, x.f, x[i], *x, ...).
func (w *escapeWalker) rootObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return w.objOf(e)
	case *ast.SelectorExpr:
		return w.rootObj(e.X)
	case *ast.IndexExpr:
		return w.rootObj(e.X)
	case *ast.StarExpr:
		return w.rootObj(e.X)
	case *ast.ParenExpr:
		return w.rootObj(e.X)
	}
	return nil
}

func (w *escapeWalker) usesLoopVar(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.loopVars[w.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (w *escapeWalker) isInteger(e ast.Expr) bool {
	t := w.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// followingStmts returns the statements after stmt in its innermost
// enclosing block (empty when not found).
func followingStmts(f *ast.File, stmt ast.Stmt) []ast.Stmt {
	var following []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if following != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			if s == stmt {
				following = list[i+1:]
				return false
			}
		}
		return true
	})
	return following
}

// sortedAfter reports whether the appended-to slice is passed to a sort
// before any other use in the statements following the loop.
func (c *checker) sortedAfter(target *ast.Ident, following []ast.Stmt) bool {
	info := c.pass.TypesInfo
	obj := info.Uses[target]
	if obj == nil {
		obj = info.Defs[target]
	}
	if obj == nil {
		return false
	}
	uses := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	for _, s := range following {
		if !uses(s) {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		pkg, name := c.calleePkgFunc(call)
		isSort := (pkg == "sort" && (strings.HasPrefix(name, "Sort") || name == "Ints" ||
			name == "Strings" || name == "Float64s" || name == "Slice" ||
			name == "SliceStable" || name == "Stable")) ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return false
		}
		// The collected slice must be what is being sorted.
		if id, ok := call.Args[0].(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
		return false
	}
	return false
}
