package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a datum an analyzer attaches to a package-level object
// (typically an exported function) so that later passes of the same
// analyzer — over packages that import the object's package — can see
// through the call without re-analyzing the callee's source. Concrete
// fact types must be pointers to gob-serializable structs with exported
// fields and must be listed in the owning Analyzer's FactTypes.
//
// Facts are namespaced per analyzer: hotlint's fact about a function is
// invisible to detlint, mirroring the x/tools fact model.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// ObjectKey returns the stable cross-package key for a package-level
// object. For functions and methods it is types.Func.FullName — e.g.
// "repro/internal/trace.ReadFile" or "(*repro/internal/trace.Reader).Step" —
// which is identical whether the object was type-checked from source
// (standalone driver, analysistest) or reconstructed from gc export data
// (vettool driver), making it safe to persist in vetx files.
func ObjectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// factKey identifies one stored fact: which analyzer owns it, which
// object it describes, and which concrete fact type it is (an analyzer
// may declare several).
type factKey struct {
	analyzer string
	object   string
	typ      string
}

// FactSet is the driver-side store of facts for one analysis run. The
// standalone driver keeps one FactSet for the whole module and threads it
// bottom-up through the package DAG; the vettool driver decodes one from
// the dependency vetx files of each compilation unit.
//
// A FactSet may be layered: exports go to the top layer while imports
// fall back through parents, which lets a driver serialize exactly the
// facts one package pass produced (see NewLayer/Encode).
type FactSet struct {
	parent *FactSet
	facts  map[factKey]Fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[factKey]Fact)}
}

// NewLayer returns a FactSet whose exports are kept separate from s but
// whose imports consult s on a miss. Encode on the layer serializes only
// the layer's own facts.
func (s *FactSet) NewLayer() *FactSet {
	return &FactSet{parent: s, facts: make(map[factKey]Fact)}
}

// ExportObjectFact stores fact for obj under the given analyzer's
// namespace, replacing any previous fact of the same concrete type.
func (s *FactSet) ExportObjectFact(analyzer string, obj types.Object, fact Fact) {
	if err := validateFactType(fact); err != nil {
		panic(fmt.Sprintf("analysis: ExportObjectFact(%s): %v", analyzer, err))
	}
	s.facts[factKey{analyzer, ObjectKey(obj), factTypeName(fact)}] = fact
}

// ImportObjectFact copies the stored fact for obj of fact's concrete type
// into *fact and reports whether one existed.
func (s *FactSet) ImportObjectFact(analyzer string, obj types.Object, fact Fact) bool {
	if err := validateFactType(fact); err != nil {
		panic(fmt.Sprintf("analysis: ImportObjectFact(%s): %v", analyzer, err))
	}
	key := factKey{analyzer, ObjectKey(obj), factTypeName(fact)}
	for set := s; set != nil; set = set.parent {
		if stored, ok := set.facts[key]; ok {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
			return true
		}
	}
	return false
}

// Len returns the number of facts stored in this set (excluding parents).
func (s *FactSet) Len() int { return len(s.facts) }

// gobFact is the serialized form of one fact. The concrete Fact type
// travels through the gob interface mechanism, so every fact type must be
// registered (RegisterFactTypes) before Encode or Decode.
type gobFact struct {
	Analyzer string
	Object   string
	Fact     Fact
}

// Encode serializes this set's own facts (not parents') into a
// deterministic byte stream: facts are sorted by analyzer, object and
// type, so identical analyses produce identical vetx bytes.
func (s *FactSet) Encode() ([]byte, error) {
	out := make([]gobFact, 0, len(s.facts))
	for k, f := range s.facts {
		out = append(out, gobFact{Analyzer: k.analyzer, Object: k.object, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return factTypeName(a.Fact) < factTypeName(b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a previously encoded fact stream into s. Unknown fact
// types are an error: drivers must RegisterFactTypes for every analyzer
// they run before decoding.
func (s *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, gf := range in {
		if gf.Fact == nil {
			return fmt.Errorf("analysis: decoded nil fact for %s/%s", gf.Analyzer, gf.Object)
		}
		s.facts[factKey{gf.Analyzer, gf.Object, factTypeName(gf.Fact)}] = gf.Fact
	}
	return nil
}

// RegisterFactTypes registers every fact type declared by the analyzers
// with gob, enabling FactSet serialization. Safe to call more than once
// with the same analyzers.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// factTypeName returns the stable name of a fact's concrete type,
// e.g. "*hotlint.AllocFact".
func factTypeName(f Fact) string {
	return reflect.TypeOf(f).String()
}

// validateFactType checks that a fact value is usable: a non-nil pointer
// to a struct.
func validateFactType(f Fact) error {
	if f == nil {
		return fmt.Errorf("nil fact")
	}
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("fact type %s is not a pointer to struct", t)
	}
	return nil
}
