package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// maxInsts bounds test captures well above the longest workload.
const maxInsts = 50_000_000

func testPrograms(t *testing.T) []*isa.Program {
	t.Helper()
	var ps []*isa.Program
	for _, w := range prog.AllExtended() {
		p, err := w.Program()
		if err != nil {
			t.Fatalf("workload %s: %v", w.Name, err)
		}
		ps = append(ps, p)
	}
	for seed := int64(0); seed < 10; seed++ {
		p, err := prog.Random(prog.RandomConfig{Seed: seed})
		if err != nil {
			t.Fatalf("random seed %d: %v", seed, err)
		}
		ps = append(ps, p)
	}
	return ps
}

// TestReplayMatchesExecution is the core differential: for every
// workload and a spread of random programs, the replayed Record stream
// must be identical, record for record, to lockstep execution — and the
// trace's stored output and state hash must match the machine's.
func TestReplayMatchesExecution(t *testing.T) {
	for _, p := range testPrograms(t) {
		tr, err := Capture(p, maxInsts)
		if err != nil {
			t.Fatalf("%s: capture: %v", p.Name, err)
		}
		m := emu.New(p)
		r := NewReader(tr)
		var steps uint64
		for {
			want, werr := m.Step()
			got, gerr := r.Step()
			if !errors.Is(gerr, werr) && (gerr != nil || werr != nil) {
				t.Fatalf("%s step %d: machine err %v, replay err %v", p.Name, steps, werr, gerr)
			}
			if werr != nil {
				break
			}
			if got != want {
				t.Fatalf("%s step %d: machine %+v, replay %+v", p.Name, steps, want, got)
			}
			if got.PC != r.PC() && !r.Halted() {
				// PC() must track NextPC like emu.Machine.PC does.
				if r.PC() != got.NextPC {
					t.Fatalf("%s step %d: reader PC %d, want %d", p.Name, steps, r.PC(), got.NextPC)
				}
			}
			steps++
		}
		if steps != tr.Steps() {
			t.Fatalf("%s: replayed %d steps, trace has %d", p.Name, steps, tr.Steps())
		}
		if !r.Halted() || !m.Halted() {
			t.Fatalf("%s: halted mismatch: reader %v machine %v", p.Name, r.Halted(), m.Halted())
		}
		if tr.StateHash() != m.StateHash() {
			t.Fatalf("%s: trace state hash differs from machine", p.Name)
		}
		if len(tr.Output()) != len(m.Output) {
			t.Fatalf("%s: trace output %d values, machine %d", p.Name, len(tr.Output()), len(m.Output))
		}
		for i, v := range tr.Output() {
			if m.Output[i] != v {
				t.Fatalf("%s: output[%d] = %d, machine %d", p.Name, i, v, m.Output[i])
			}
		}
	}
}

// TestPackedDensity pins the format's figure of merit: the packed stream
// must stay near one byte per dynamic instruction on real workloads.
func TestPackedDensity(t *testing.T) {
	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	bpi := float64(tr.PackedBytes()) / float64(tr.Steps())
	if bpi > 2 {
		t.Fatalf("packed density %.2f bytes/inst, want ≤ 2", bpi)
	}
	t.Logf("compress: %d insts, %d packed bytes (%.3f bytes/inst)", tr.Steps(), tr.PackedBytes(), bpi)
}

func mustProgram(t *testing.T, name string) *isa.Program {
	t.Helper()
	w, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReaderStepAllocFree guards the replay hot path: steady-state Step
// must not allocate.
func TestReaderStepAllocFree(t *testing.T) {
	p := mustProgram(t, "compress.big")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Chunks() < 2 {
		t.Fatalf("compress.big packs into %d chunk(s); the alloc guard must cross a chunk boundary", tr.Chunks())
	}
	// Position the cursor so the measured window crosses a chunk
	// boundary: the refill path must be allocation-free too.
	r := NewReader(tr)
	for r.step < chunkRecords-50_000 {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100_000, func() {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reader.Step allocates %.1f times per call, want 0", allocs)
	}
}

// TestFileReaderStepAllocFree repeats the hot-path guard for file-backed
// traces: chunk refills from disk (ReadAt + checksum verify into the
// pooled buffer) must not allocate either.
func TestFileReaderStepAllocFree(t *testing.T) {
	p := mustProgram(t, "compress.big")
	dir := t.TempDir()
	tr, err := CaptureToDir(p, maxInsts, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Chunks() < 2 {
		t.Fatalf("compress.big packs into %d chunk(s); the alloc guard must cross a chunk boundary", tr.Chunks())
	}
	r := NewReader(tr)
	for r.step < chunkRecords-50_000 {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100_000, func() {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("file-backed Reader.Step allocates %.1f times per call, want 0", allocs)
	}
	r.Release()
}

// TestRecorderRefusesSpeculation pins the checkpoint-interaction choice
// for ISSUE 5: capture refuses loudly while a checkpoint is live, and
// resumes consistently once the machine is restored (or committed) back
// to exactly the state the recorder last saw.
func TestRecorderRefusesSpeculation(t *testing.T) {
	p := mustProgram(t, "micro.branchy")
	m := emu.New(p)
	r, err := NewRecorder(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// A live checkpoint must stop capture without poisoning the recorder.
	cp := m.Checkpoint()
	if _, err := r.Step(); !errors.Is(err, ErrSpeculating) {
		t.Fatalf("Step during speculation: err %v, want ErrSpeculating", err)
	}

	// Speculate down the wrong path behind the recorder's back, then roll
	// back: Restore returns the machine to the recorded point, so capture
	// resumes and the finished trace must still match lockstep execution.
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for !m.Halted() {
		if _, err := r.Step(); err != nil {
			t.Fatalf("resumed capture: %v", err)
		}
	}
	tr, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ref := emu.New(p)
	rd := NewReader(tr)
	for {
		want, werr := ref.Step()
		got, gerr := rd.Step()
		if werr != nil || gerr != nil {
			if !errors.Is(gerr, werr) {
				t.Fatalf("err mismatch: %v vs %v", werr, gerr)
			}
			break
		}
		if got != want {
			t.Fatalf("post-restore trace diverges: %+v vs %+v", got, want)
		}
	}

	// Commit back at the same instruction count also resumes cleanly.
	m2 := emu.New(p)
	r2, err := NewRecorder(m2, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Step(); err != nil {
		t.Fatal(err)
	}
	cp2 := m2.Checkpoint()
	if err := m2.Commit(cp2); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Step(); err != nil {
		t.Fatalf("Step after commit at the recorded point: %v", err)
	}

	// But a machine that advanced and committed — its history can no
	// longer be recorded — must fail permanently, not silently skip.
	m3 := emu.New(p)
	r3, err := NewRecorder(m3, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m3.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Step(); err == nil {
		t.Fatal("Step on an externally advanced machine succeeded, want error")
	}
	if _, err := r3.Step(); err == nil {
		t.Fatal("recorder error must be sticky")
	}
}

// TestNewRecorderRejectsUsedMachine covers the constructor guards.
func TestNewRecorderRejectsUsedMachine(t *testing.T) {
	p := mustProgram(t, "micro.chain")
	m := emu.New(p)
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecorder(m, p); err == nil {
		t.Fatal("NewRecorder accepted a machine with executed instructions")
	}
	m2 := emu.New(p)
	m2.Checkpoint()
	if _, err := NewRecorder(m2, p); !errors.Is(err, ErrSpeculating) {
		t.Fatalf("NewRecorder on speculating machine: err %v, want ErrSpeculating", err)
	}
}

// TestDiskRoundTrip checks Marshal/Unmarshal and the file layer,
// including the corrupt-file hardening the CLI relies on: bad bytes are
// rejected AND the file is removed so a recapture can fill the slot.
func TestDiskRoundTrip(t *testing.T) {
	p := mustProgram(t, "micro.stream")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := tr.WriteFile(dir); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps() != tr.Steps() || got.StateHash() != tr.StateHash() {
		t.Fatal("disk round trip changed the trace")
	}
	ref := emu.New(p)
	rd := NewReader(got)
	for !ref.Halted() {
		want, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := rd.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec != want {
			t.Fatalf("loaded trace diverges: %+v vs %+v", rec, want)
		}
	}

	// Marshal must be canonical: two captures serialize identically.
	tr2, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Marshal(), tr2.Marshal()
	if string(a) != string(b) {
		t.Fatal("Marshal is not canonical across captures")
	}

	path := DiskPath(dir, p)

	// Truncation: checksum fails, file is deleted.
	if err := os.WriteFile(path, a[:len(a)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, p); err == nil {
		t.Fatal("ReadFile accepted a truncated trace")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("truncated trace file was not removed")
	}

	// Bit rot inside the footer: the open-time checksum fails, file is
	// deleted.
	bad := append([]byte(nil), a...)
	bad[len(bad)-trailerLen-5] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, p); err == nil {
		t.Fatal("ReadFile accepted a trace with a corrupt footer")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt trace file was not removed")
	}

	// Bit rot inside the chunk data: open succeeds (the stream is not
	// re-read), but the poisoned chunk fails its checksum at load time —
	// a reader can never decode torn bytes.
	bad = append([]byte(nil), a...)
	bad[fileHeaderLen+tr.PackedBytes()/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	rotten, err := ReadFile(dir, p)
	if err != nil {
		t.Fatalf("ReadFile rejected a trace whose footer is intact: %v", err)
	}
	sawCorrupt := false
	rd = NewReader(rotten)
	for {
		if _, err := rd.Step(); err != nil {
			if errors.Is(err, emu.ErrHalted) {
				break
			}
			if !errors.Is(err, ErrCorruptChunk) {
				t.Fatalf("rotten chunk surfaced as %v, want ErrCorruptChunk", err)
			}
			sawCorrupt = true
			break
		}
	}
	if !sawCorrupt {
		t.Fatal("reader replayed a trace with a rotten chunk to completion")
	}
	if err := rotten.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Invalidate did not remove the rotten trace file")
	}

	// A different program's trace in this program's slot: rejected.
	other, err := Capture(mustProgram(t, "micro.chain"), maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, other.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, p); err == nil {
		t.Fatal("ReadFile accepted a trace for a different program")
	}

	// Missing file surfaces os.ErrNotExist so callers can distinguish
	// "capture needed" from "I/O trouble".
	if _, err := ReadFile(dir, p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing trace: err %v, want os.ErrNotExist", err)
	}

	// Stray temp files must not be mistaken for traces.
	if err := os.WriteFile(filepath.Join(dir, "trace-stray.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(dir, p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray temp file changed lookup: err %v", err)
	}
}

// TestReaderCorruptStream checks the reader's in-memory truncation guard
// (the disk checksum normally catches this first).
func TestReaderCorruptStream(t *testing.T) {
	p := mustProgram(t, "micro.branchy")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the final chunk's bytes while keeping the step count: the
	// reader must run out of packed bytes before it runs out of records.
	last := tr.chunks[len(tr.chunks)-1]
	cut := uint64(last.packedLen) / 2
	chunks := append([]chunkMeta(nil), tr.chunks...)
	chunks[len(chunks)-1].packedLen = uint32(cut)
	store := tr.store.(*memStore)
	mem := append([][]byte(nil), store.chunks...)
	mem[len(mem)-1] = mem[len(mem)-1][:cut]
	trunc := &Trace{
		prog: tr.prog, entryPC: tr.entryPC, n: tr.n,
		packedLen: tr.packedLen - uint64(last.packedLen) + cut,
		chunkRecs: tr.chunkRecs, chunks: chunks,
		store: &memStore{chunks: mem},
	}
	r := NewReader(trunc)
	for {
		if _, err := r.Step(); err != nil {
			if errors.Is(err, emu.ErrHalted) {
				t.Fatal("truncated stream replayed to completion")
			}
			break
		}
	}
}
