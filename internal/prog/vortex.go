package prog

// vortex mirrors SPEC95 147.vortex: an object-oriented database running a
// transaction mix. Records live in a flat store; a sorted key column is
// searched with binary search; transactions are a lookup-heavy mix with
// updates and inserts — pointer-ish loads, compares, and stores over a
// working set larger than the L1 sets it touches.

const (
	vortexInitial  = 300
	vortexMax      = 400
	vortexRecWords = 8
	vortexTxns     = 4000
)

func vortexRef() []int32 {
	rec := make([]int32, vortexMax*vortexRecWords)
	count := int32(vortexInitial)
	for i := int32(0); i < count; i++ {
		base := i * vortexRecWords
		rec[base] = i*7 + 3 // sorted key column
		for j := int32(1); j < vortexRecWords; j++ {
			rec[base+j] = rec[base]*j + 5
		}
	}
	// Binary search for key; the key is always present by construction.
	find := func(key int32) int32 {
		lo, hi := int32(0), count-1
		for lo < hi {
			mid := int32(uint32(lo+hi) >> 1)
			if rec[mid*vortexRecWords] < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	var csum int32
	s := int32(60601)
	for t := 0; t < vortexTxns; t++ {
		s = lcg(s)
		op := (s >> 16) & 15
		s = lcg(s)
		// Scaled pick in [0, count) without division.
		pick := int32((uint32(s) >> 16) * uint32(count) >> 16)
		key := pick*7 + 3
		switch {
		case op < 11: // lookup
			i := find(key)
			base := i * vortexRecWords
			for j := int32(1); j < vortexRecWords; j++ {
				csum += rec[base+j]
			}
		case op < 14: // update
			i := find(key)
			f := 1 + (s & 7)
			if f >= vortexRecWords {
				f = 1
			}
			rec[i*vortexRecWords+f] += op
			csum ^= rec[i*vortexRecWords+f]
		default: // insert (append keeps the key column sorted)
			if count < vortexMax {
				base := count * vortexRecWords
				rec[base] = count*7 + 3
				for j := int32(1); j < vortexRecWords; j++ {
					rec[base+j] = rec[base]*j + 5
				}
				count++
			}
			// Scan checksum over the most recent records.
			for i := count - 16; i < count; i++ {
				csum = csum*5 + rec[i*vortexRecWords]
			}
		}
	}
	return []int32{count, csum}
}

const vortexSrc = `
# vortex: object store with binary-searched key column and a
# lookup/update/insert transaction mix (mirrors SPEC95 147.vortex).
		.data
rec:	.space 12800           # 400 records x 8 words
		.text
main:
		la   $s0, rec
		li   $s1, 300          # count
		li   $t8, 1103515245

		# Initialize the store: key = i*7+3, field j = key*j+5.
		li   $t1, 0            # i
initr:	li   $t2, 7
		mul  $t2, $t1, $t2
		addi $t2, $t2, 3       # key
		sll  $t3, $t1, 5       # byte offset of record (8 words)
		add  $t3, $s0, $t3
		sw   $t2, 0($t3)
		li   $t4, 1            # j
initf:	mul  $t5, $t2, $t4
		addi $t5, $t5, 5
		sll  $t6, $t4, 2
		add  $t6, $t3, $t6
		sw   $t5, 0($t6)
		addi $t4, $t4, 1
		li   $t6, 8
		blt  $t4, $t6, initf
		addi $t1, $t1, 1
		blt  $t1, $s1, initr

		li   $s4, 0            # csum
		li   $s3, 4000         # transactions remaining
		li   $s2, 60601        # seed
txn:	mul  $s2, $s2, $t8
		addi $s2, $s2, 12345
		srl  $s5, $s2, 16
		andi $s5, $s5, 15      # op
		mul  $s2, $s2, $t8
		addi $s2, $s2, 12345
		srl  $t1, $s2, 16      # (uint32(s) >> 16)
		mul  $t1, $t1, $s1
		srl  $t1, $t1, 16      # pick in [0, count)
		li   $t2, 7
		mul  $s6, $t1, $t2
		addi $s6, $s6, 3       # key
		li   $t2, 11
		blt  $s5, $t2, lookup
		li   $t2, 14
		blt  $s5, $t2, update
		j    insert

lookup:	jal  find              # $v0 = record index
		sll  $t3, $v0, 5
		add  $t3, $s0, $t3
		li   $t4, 1
lkf:	sll  $t5, $t4, 2
		add  $t5, $t3, $t5
		lw   $t6, 0($t5)
		add  $s4, $s4, $t6
		addi $t4, $t4, 1
		li   $t5, 8
		blt  $t4, $t5, lkf
		j    txnend

update:	jal  find
		andi $t4, $s2, 7
		addi $t4, $t4, 1       # field 1..8
		li   $t5, 8
		blt  $t4, $t5, updok
		li   $t4, 1
updok:	sll  $t5, $v0, 5
		add  $t5, $s0, $t5
		sll  $t6, $t4, 2
		add  $t5, $t5, $t6
		lw   $t6, 0($t5)
		add  $t6, $t6, $s5
		sw   $t6, 0($t5)
		xor  $s4, $s4, $t6
		j    txnend

insert:	li   $t2, 400
		bge  $s1, $t2, noins
		li   $t2, 7
		mul  $t3, $s1, $t2
		addi $t3, $t3, 3       # new key
		sll  $t4, $s1, 5
		add  $t4, $s0, $t4     # record base
		sw   $t3, 0($t4)
		li   $t5, 1
insf:	mul  $t6, $t3, $t5
		addi $t6, $t6, 5
		sll  $t7, $t5, 2
		add  $t7, $t4, $t7
		sw   $t6, 0($t7)
		addi $t5, $t5, 1
		li   $t7, 8
		blt  $t5, $t7, insf
		addi $s1, $s1, 1
noins:	addi $t2, $s1, -16     # scan the newest 16 records
		li   $t7, 5
scan:	sll  $t3, $t2, 5
		add  $t3, $s0, $t3
		lw   $t4, 0($t3)
		mul  $s4, $s4, $t7
		add  $s4, $s4, $t4
		addi $t2, $t2, 1
		blt  $t2, $s1, scan

txnend:	addi $s3, $s3, -1
		bgtz $s3, txn

		out  $s1
		out  $s4
		halt

# find: binary search for key $s6 in the sorted key column; returns the
# record index in $v0. Clobbers $t5-$t7.
find:
		li   $v0, 0            # lo
		addi $t5, $s1, -1      # hi
floop:	bge  $v0, $t5, fdone
		add  $t6, $v0, $t5
		srl  $t6, $t6, 1       # mid
		sll  $t7, $t6, 5
		add  $t7, $s0, $t7
		lw   $t7, 0($t7)       # key[mid]
		bge  $t7, $s6, fhigh
		addi $v0, $t6, 1       # lo = mid+1
		j    floop
fhigh:	move $t5, $t6          # hi = mid
		j    floop
fdone:	jr   $ra
`

func init() {
	register(&Workload{
		Name:        "vortex",
		Description: "object store with binary-searched keys and a lookup/update/insert transaction mix (mirrors SPEC95 147.vortex)",
		Source:      vortexSrc,
		Reference:   vortexRef,
	})
}
